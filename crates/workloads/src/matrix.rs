//! `chamrun` — the declarative scenario-matrix experiment runner.
//!
//! The paper's claims are re-validated by suites that used to be
//! hand-rolled loops: the chaos 10-seed sweep, the root-crash 3×3 matrix,
//! and the merge-scaling sweep each reinvented trial execution, seeding,
//! and artifact capture. This module turns them into *plans*: a JSON file
//! declares the axes — workload × class × rank count × fault plan × seed ×
//! feature toggles (journal on/off, checkpoint stride, reliable-protocol
//! retry budget) — and the runner expands the cross product, executes the
//! trials on a bounded worker pool, and writes per-trial artifacts under
//! `experiments_out/matrix/<plan>/<trial>/`.
//!
//! ## Determinism contract
//!
//! Everything in `results.json` is a pure function of the plan: trial IDs
//! derive only from trial coordinates, the canonical trial order is the
//! ID sort (so worker-pool parallelism and axis-list order are
//! invisible), and every recorded field is a deterministic outcome of the
//! simulation (digests, counters, virtual times — never wall clocks).
//! Re-running a plan must reproduce `results.json` byte-for-byte; the
//! committed baselines under `tests/fixtures/` pin that down and
//! [`diff_results`] names the first divergence (trial + metric) when it
//! breaks. Wall-clock timings go to the separate `timings.json`, compared
//! only with percentage bands ([`diff_timings`]).
//!
//! ## Scenario kinds
//!
//! The workload name selects the executor:
//!
//! - `"CHAOS"` — the fault-injection ring ([`crate::chaos`]); the only
//!   workload that accepts crash-bearing fault specs (`"chaos"`,
//!   `"rootcrash@first|mid|last"` — the latter runs under the checkpoint
//!   supervisor).
//! - `"MERGE_IDENTICAL" | "MERGE_NEAR" | "MERGE_DISJOINT"` — synthetic
//!   pairwise/fold merge trials (the merge-scaling sweep); `class` scales
//!   the trace size (`merge_base_n × multiplier`), `ranks` is the fold
//!   width.
//! - anything else — a named benchmark skeleton ([`crate::registry`]) run
//!   through [`crate::driver`] in Chameleon mode; fault specs are limited
//!   to `"none"` and `"lossy"` (app-plane receives of the skeletons are
//!   not dead-aware). The degraded specs (`"straggler"`, `"ramp"`,
//!   `"imbalance"`) additionally require the `DRING`/`DGRID` scenario
//!   workloads and select the detect-and-mitigate executor: the trial
//!   runs twice (detector armed and off), scores the emitted anomaly
//!   events against the injected plan's ground truth, and records
//!   precision / recall / detection latency plus the mitigation payoff.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use chameleon::ChameleonConfig;
use mpisim::{Comm, FaultPlan};
use obs::query::fnv64;
use scalatrace::merge::{merge_traces, merge_traces_reference};
use scalatrace::{format as trace_format, CompressedTrace, Endpoint, EventRecord, MpiOp};
use sigkit::StackSig;

use crate::chaos::{
    chaos_plan, latest_checkpoint, marker_entry_ops, root_crash_plan, run_chaos_result,
    run_chaos_supervised,
};
use crate::degraded::{degraded_detector, imbalance_plan, ramp_plan, straggler_plan};
use crate::driver::{run as drive, Mode, Overrides};
use crate::registry::try_workload;
use crate::Class;

// ---------------------------------------------------------------------
// Minimal JSON (the workspace is hermetic: no serde)
// ---------------------------------------------------------------------

/// A JSON value. Objects keep insertion order so the writer is
/// deterministic; the canonical artifacts below always insert keys in
/// sorted order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (plans only use values exact in an `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Pretty canonical text: 2-space indent, insertion key order, `\n`
    /// separators, no trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Integers print without a fractional part so counters and
                // seeds stay readable; everything else uses the shortest
                // roundtrip form.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n:?}"));
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    item.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// A non-negative integer payload exact in an `f64`.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n < 9.0e15).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("dangling escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("\\u{hex} is not a scalar value"))?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape \\{}", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fault specs
// ---------------------------------------------------------------------

/// Which marker boundary a root-crash trial kills rank 0 at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrashPoint {
    /// The first marker.
    First,
    /// `steps / 2`.
    Mid,
    /// The last marker.
    Last,
}

impl CrashPoint {
    /// The marker index for a run of `steps` markers.
    pub fn marker(self, steps: usize) -> usize {
        match self {
            CrashPoint::First => 0,
            CrashPoint::Mid => steps / 2,
            CrashPoint::Last => steps - 1,
        }
    }
}

/// One value of the plan's fault axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSpec {
    /// Armed fault layer, nothing injected.
    None,
    /// The standard lossy link (2% corruption, 0.5% duplication, 0.5%
    /// delay) with no crash — legal on every workload.
    Lossy,
    /// [`chaos_plan`]: one non-root rank crash plus the lossy link
    /// (`CHAOS` workload only).
    Chaos,
    /// [`root_crash_plan`] at a marker boundary, run under the checkpoint
    /// supervisor (`CHAOS` workload only; needs `ckpt_stride >= 1`).
    RootCrash(CrashPoint),
    /// [`straggler_plan`]: rank `p - 1` computes 4x slower (`DRING` /
    /// `DGRID` only; the trial scores detection against ground truth).
    Straggler,
    /// [`ramp_plan`]: rank 1's outgoing tool-plane link degrades
    /// progressively (`DRING` / `DGRID` only).
    Ramp,
    /// [`imbalance_plan`]: the heavy corner runs 2.5x compute (`DRING` /
    /// `DGRID` only).
    Imbalance,
}

impl FaultSpec {
    /// Parse a plan-file fault string.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        match s {
            "none" => Ok(FaultSpec::None),
            "lossy" => Ok(FaultSpec::Lossy),
            "chaos" => Ok(FaultSpec::Chaos),
            "rootcrash@first" => Ok(FaultSpec::RootCrash(CrashPoint::First)),
            "rootcrash@mid" => Ok(FaultSpec::RootCrash(CrashPoint::Mid)),
            "rootcrash@last" => Ok(FaultSpec::RootCrash(CrashPoint::Last)),
            "straggler" => Ok(FaultSpec::Straggler),
            "ramp" => Ok(FaultSpec::Ramp),
            "imbalance" => Ok(FaultSpec::Imbalance),
            other => Err(format!(
                "unknown fault spec {other:?} (want none | lossy | chaos | \
                 rootcrash@first|mid|last | straggler | ramp | imbalance)"
            )),
        }
    }

    /// Filesystem- and ID-safe tag.
    pub fn id(self) -> &'static str {
        match self {
            FaultSpec::None => "none",
            FaultSpec::Lossy => "lossy",
            FaultSpec::Chaos => "chaos",
            FaultSpec::RootCrash(CrashPoint::First) => "rootcrash_first",
            FaultSpec::RootCrash(CrashPoint::Mid) => "rootcrash_mid",
            FaultSpec::RootCrash(CrashPoint::Last) => "rootcrash_last",
            FaultSpec::Straggler => "straggler",
            FaultSpec::Ramp => "ramp",
            FaultSpec::Imbalance => "imbalance",
        }
    }

    /// Does this spec kill a rank?
    pub fn crashes(self) -> bool {
        matches!(self, FaultSpec::Chaos | FaultSpec::RootCrash(_))
    }

    /// Does this spec degrade ranks without killing them (the detect-and-
    /// mitigate scenarios scored against [`FaultPlan::degraded_ranks`])?
    pub fn degrades(self) -> bool {
        matches!(
            self,
            FaultSpec::Straggler | FaultSpec::Ramp | FaultSpec::Imbalance
        )
    }

    /// The injected plan of a degraded spec (`None` for other specs).
    fn degraded_plan(self, seed: u64, p: usize) -> Option<FaultPlan> {
        match self {
            FaultSpec::Straggler => Some(straggler_plan(seed, p)),
            FaultSpec::Ramp => Some(ramp_plan(seed)),
            FaultSpec::Imbalance => Some(imbalance_plan(seed)),
            _ => None,
        }
    }

    /// The crash-free lossy link shared by `lossy`, `chaos`, and
    /// `rootcrash` specs.
    fn lossy_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .corrupt_per_mille(20)
            .duplicate_per_mille(5)
            .delay(5, 2e-4)
    }
}

// ---------------------------------------------------------------------
// Plans and trials
// ---------------------------------------------------------------------

/// One expanded point of the cross product.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Canonical ID, a pure function of the coordinates below.
    pub id: String,
    /// Workload name (`CHAOS`, `MERGE_*`, or a registry name).
    pub workload: String,
    /// Input class.
    pub class: Class,
    /// World size (fold width for `MERGE_*`).
    pub p: usize,
    /// Fault-plan / generator seed.
    pub seed: u64,
    /// Fault axis value.
    pub fault: FaultSpec,
    /// Flight recorder on?
    pub journal: bool,
    /// Durable-checkpoint stride (0 = off).
    pub ckpt_stride: u64,
    /// Reliable-protocol retry budget.
    pub retry_budget: u32,
}

#[allow(clippy::too_many_arguments)] // one parameter per matrix axis, by design
fn trial_id(
    workload: &str,
    class: Class,
    p: usize,
    fault: FaultSpec,
    seed: u64,
    journal: bool,
    ckpt_stride: u64,
    retry_budget: u32,
) -> String {
    // Zero-padded numeric fields make the lexicographic ID sort agree
    // with the numeric axis order, so the canonical trial sequence is
    // stable under any axis-list or JSON-key reordering.
    format!(
        "{workload}-{}-p{p:04}-{}-s{seed:016x}-j{}-k{ckpt_stride:02}-r{retry_budget:02}",
        class.label(),
        fault.id(),
        u8::from(journal),
    )
}

/// A parsed, validated scenario-matrix plan.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixPlan {
    /// Plan name (directory under the matrix output root).
    pub name: String,
    /// Workload axis.
    pub workloads: Vec<String>,
    /// Class axis (default `["A"]`).
    pub classes: Vec<Class>,
    /// Rank-count axis.
    pub ranks: Vec<usize>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Fault axis (default `["none"]`).
    pub faults: Vec<FaultSpec>,
    /// Journal toggle axis (default `[true]`).
    pub journal: Vec<bool>,
    /// Checkpoint-stride axis (default `[0]`).
    pub ckpt_strides: Vec<u64>,
    /// Retry-budget axis (default `[1]`).
    pub retry_budgets: Vec<u32>,
    /// Chaos-ring markers per trial (default 40; `CHAOS` only).
    pub steps: usize,
    /// Named-workload iteration divisor (default 25; see
    /// [`crate::driver::ScaledWorkload`]).
    pub scale: usize,
    /// Class-A merged-trace size for `MERGE_*` trials (default 128).
    pub merge_base_n: usize,
    /// Timing band for [`diff_timings`], in percent (default 50).
    pub timing_tolerance_pct: f64,
}

fn axis_u64(v: &Json, what: &str) -> Result<Vec<u64>, String> {
    v.as_array()
        .ok_or(format!("{what} must be an array"))?
        .iter()
        .map(|x| x.as_u64().ok_or(format!("{what} holds a non-integer")))
        .collect()
}

impl MatrixPlan {
    /// Parse a plan document. Unknown keys are errors — a typo in a
    /// declarative config must not silently become a default.
    pub fn from_json(text: &str) -> Result<MatrixPlan, String> {
        let doc = Json::parse(text)?;
        let obj = match &doc {
            Json::Obj(entries) => entries,
            _ => return Err("plan must be a JSON object".to_string()),
        };
        const KNOWN: [&str; 13] = [
            "name",
            "workloads",
            "classes",
            "ranks",
            "seeds",
            "faults",
            "journal",
            "ckpt_strides",
            "retry_budgets",
            "steps",
            "scale",
            "merge_base_n",
            "timing_tolerance_pct",
        ];
        for (key, _) in obj {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!("unknown plan key {key:?}"));
            }
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("plan needs a string \"name\"")?
            .to_string();
        let workloads: Vec<String> = doc
            .get("workloads")
            .and_then(Json::as_array)
            .ok_or("plan needs a \"workloads\" array")?
            .iter()
            .map(|w| {
                w.as_str()
                    .map(str::to_string)
                    .ok_or("workloads holds a non-string".to_string())
            })
            .collect::<Result<_, _>>()?;
        let classes = match doc.get("classes") {
            None => vec![Class::A],
            Some(v) => v
                .as_array()
                .ok_or("classes must be an array")?
                .iter()
                .map(|c| match c.as_str() {
                    Some("A") => Ok(Class::A),
                    Some("B") => Ok(Class::B),
                    Some("C") => Ok(Class::C),
                    Some("D") => Ok(Class::D),
                    _ => Err(format!("bad class {c:?} (want \"A\"..\"D\")")),
                })
                .collect::<Result<_, _>>()?,
        };
        let ranks = axis_u64(
            doc.get("ranks").ok_or("plan needs a \"ranks\" array")?,
            "ranks",
        )?
        .into_iter()
        .map(|r| r as usize)
        .collect();
        let seeds = axis_u64(
            doc.get("seeds").ok_or("plan needs a \"seeds\" array")?,
            "seeds",
        )?;
        let faults = match doc.get("faults") {
            None => vec![FaultSpec::None],
            Some(v) => v
                .as_array()
                .ok_or("faults must be an array")?
                .iter()
                .map(|f| FaultSpec::parse(f.as_str().ok_or("faults holds a non-string")?))
                .collect::<Result<_, _>>()?,
        };
        let journal = match doc.get("journal") {
            None => vec![true],
            Some(v) => v
                .as_array()
                .ok_or("journal must be an array")?
                .iter()
                .map(|b| b.as_bool().ok_or("journal holds a non-boolean".to_string()))
                .collect::<Result<_, _>>()?,
        };
        let ckpt_strides = match doc.get("ckpt_strides") {
            None => vec![0],
            Some(v) => axis_u64(v, "ckpt_strides")?,
        };
        let retry_budgets = match doc.get("retry_budgets") {
            None => vec![1],
            Some(v) => axis_u64(v, "retry_budgets")?
                .into_iter()
                .map(|b| b as u32)
                .collect(),
        };
        let scalar = |key: &str, default: u64| -> Result<u64, String> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v.as_u64().ok_or(format!("{key} must be an integer")),
            }
        };
        let steps = scalar("steps", 40)? as usize;
        let scale = scalar("scale", 25)? as usize;
        let merge_base_n = scalar("merge_base_n", 128)? as usize;
        let timing_tolerance_pct = match doc.get("timing_tolerance_pct") {
            None => 50.0,
            Some(v) => v.as_f64().ok_or("timing_tolerance_pct must be a number")?,
        };
        Ok(MatrixPlan {
            name,
            workloads,
            classes,
            ranks,
            seeds,
            faults,
            journal,
            ckpt_strides,
            retry_budgets,
            steps,
            scale,
            merge_base_n,
            timing_tolerance_pct,
        })
    }

    /// Read, parse, and validate a plan file.
    pub fn load(path: &Path) -> Result<MatrixPlan, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let plan = MatrixPlan::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        plan.validate()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(plan)
    }

    /// Reject plans the executors cannot honor. Duplicate axis values are
    /// errors too: they would silently collapse the cross product (trial
    /// IDs collide), breaking the cardinality contract.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!(
                "plan name {:?} must be non-empty [A-Za-z0-9_-]",
                self.name
            ));
        }
        fn no_dupes<T: PartialEq + fmt::Debug>(axis: &[T], what: &str) -> Result<(), String> {
            if axis.is_empty() {
                return Err(format!("{what} axis is empty"));
            }
            for (i, v) in axis.iter().enumerate() {
                if axis[..i].contains(v) {
                    return Err(format!("{what} axis repeats {v:?}"));
                }
            }
            Ok(())
        }
        no_dupes(&self.workloads, "workloads")?;
        no_dupes(&self.classes, "classes")?;
        no_dupes(&self.ranks, "ranks")?;
        no_dupes(&self.seeds, "seeds")?;
        no_dupes(&self.faults, "faults")?;
        no_dupes(&self.journal, "journal")?;
        no_dupes(&self.ckpt_strides, "ckpt_strides")?;
        no_dupes(&self.retry_budgets, "retry_budgets")?;
        if self.retry_budgets.contains(&0) {
            return Err("retry budgets must be >= 1".to_string());
        }
        if self.steps == 0 || self.scale == 0 || self.merge_base_n == 0 {
            return Err("steps, scale, and merge_base_n must be >= 1".to_string());
        }
        let crash_faults = self.faults.iter().any(|f| f.crashes());
        let rootcrash = self
            .faults
            .iter()
            .any(|f| matches!(f, FaultSpec::RootCrash(_)));
        if self.faults.iter().any(|f| f.degrades()) {
            for w in &self.workloads {
                if !matches!(w.as_str(), "DRING" | "DGRID") {
                    return Err(format!(
                        "degraded faults (straggler/ramp/imbalance) require the DRING/DGRID \
                         scenario workloads; {w:?} cannot host them (no tool-plane heartbeat \
                         to carry the flaky signal)"
                    ));
                }
            }
            if self.ranks.iter().any(|&p| p < 4 || !p.is_multiple_of(2)) {
                return Err(
                    "degraded trials need even world sizes of at least 4 ranks (the heartbeat \
                     ring is phased pairwise)"
                        .to_string(),
                );
            }
            if self.journal != [true] {
                return Err(
                    "degraded trials score the journal's anomaly events against ground truth; \
                     set journal to [true]"
                        .to_string(),
                );
            }
        }
        for w in &self.workloads {
            if w == "CHAOS" {
                if self.ranks.iter().any(|&p| p < 2) {
                    return Err("CHAOS needs at least 2 ranks".to_string());
                }
                continue;
            }
            if crash_faults {
                return Err(format!(
                    "crash-bearing faults require the CHAOS workload; {w:?} cannot host them \
                     (its app-plane receives are not dead-aware)"
                ));
            }
            if w.starts_with("MERGE_") {
                if !matches!(
                    w.as_str(),
                    "MERGE_IDENTICAL" | "MERGE_NEAR" | "MERGE_DISJOINT"
                ) {
                    return Err(format!("unknown merge case {w:?}"));
                }
                if self.faults.iter().any(|f| *f != FaultSpec::None) {
                    return Err(
                        "MERGE_* trials take no fault plan (use faults [\"none\"])".to_string()
                    );
                }
                continue;
            }
            if try_workload(w, 1).is_none() {
                return Err(format!("unknown workload {w:?}"));
            }
        }
        if rootcrash {
            if self.ckpt_strides.contains(&0) {
                return Err(
                    "rootcrash faults need ckpt_strides >= 1 (the supervisor resumes from disk)"
                        .to_string(),
                );
            }
            if self.retry_budgets != [1] {
                return Err(
                    "rootcrash faults pin retry_budgets to [1] (the supervised path uses the \
                     protocol default)"
                        .to_string(),
                );
            }
        }
        Ok(())
    }

    /// Cross-product cardinality.
    pub fn cardinality(&self) -> usize {
        self.workloads.len()
            * self.classes.len()
            * self.ranks.len()
            * self.seeds.len()
            * self.faults.len()
            * self.journal.len()
            * self.ckpt_strides.len()
            * self.retry_budgets.len()
    }

    /// Expand the full cross product into trials in canonical (ID-sorted)
    /// order. IDs are pure functions of trial coordinates, so the result
    /// is identical for any reordering of plan fields or axis lists.
    pub fn expand(&self) -> Vec<Trial> {
        let mut trials = Vec::with_capacity(self.cardinality());
        for workload in &self.workloads {
            for &class in &self.classes {
                for &p in &self.ranks {
                    for &fault in &self.faults {
                        for &seed in &self.seeds {
                            for &journal in &self.journal {
                                for &ckpt_stride in &self.ckpt_strides {
                                    for &retry_budget in &self.retry_budgets {
                                        trials.push(Trial {
                                            id: trial_id(
                                                workload,
                                                class,
                                                p,
                                                fault,
                                                seed,
                                                journal,
                                                ckpt_stride,
                                                retry_budget,
                                            ),
                                            workload: workload.clone(),
                                            class,
                                            p,
                                            seed,
                                            fault,
                                            journal,
                                            ckpt_stride,
                                            retry_budget,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        trials.sort_by(|a, b| a.id.cmp(&b.id));
        trials
    }
}

// ---------------------------------------------------------------------
// Bounded worker pool
// ---------------------------------------------------------------------

/// Run `f` over every item on at most `jobs` worker threads, returning
/// results in *item order* regardless of scheduling: workers claim items
/// from a shared counter and deposit results by index.
pub fn run_pool<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

// ---------------------------------------------------------------------
// Trial execution
// ---------------------------------------------------------------------

/// One executed trial's row in the result table.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Trial ID (also the artifact directory name).
    pub id: String,
    /// Did the trial meet its executor's invariants?
    pub ok: bool,
    /// Deterministic outcome fields, sorted by key.
    pub fields: BTreeMap<String, String>,
    /// Real wall-clock nanoseconds (goes to `timings.json` only).
    pub wall_ns: u64,
}

fn hex64(v: u64) -> String {
    format!("{v:#018x}")
}

fn trace_fields(fields: &mut BTreeMap<String, String>, prefix: &str, trace: &CompressedTrace) {
    let text = trace_format::to_text(trace);
    fields.insert(
        format!("{prefix}_nodes"),
        trace.compressed_size().to_string(),
    );
    fields.insert(format!("{prefix}_events"), trace.dynamic_size().to_string());
    fields.insert(format!("{prefix}_digest"), hex64(fnv64(text.as_bytes())));
}

fn journal_fields(
    fields: &mut BTreeMap<String, String>,
    journal: Option<&obs::RunJournal>,
    dir: &Path,
) {
    if let Some(journal) = journal {
        fields.insert(
            "journal_events".to_string(),
            journal.events().count().to_string(),
        );
        fields.insert(
            "journal_digest".to_string(),
            hex64(obs::query::journal_digest(journal)),
        );
        let _ = std::fs::write(dir.join("journal.jsonl"), journal.to_jsonl());
    }
}

fn fault_stat_fields(fields: &mut BTreeMap<String, String>, stats: &[mpisim::FaultStats]) {
    let injected: u64 = stats
        .iter()
        .map(|f| f.drops + f.corruptions + f.duplicates + f.delays)
        .sum();
    let retransmits: u64 = stats.iter().map(|f| f.retransmits).sum();
    fields.insert("faults_injected".to_string(), injected.to_string());
    fields.insert("retransmits".to_string(), retransmits.to_string());
}

fn chaos_trial(
    plan: &MatrixPlan,
    trial: &Trial,
    dir: &Path,
    fields: &mut BTreeMap<String, String>,
) -> bool {
    let steps = plan.steps;
    fields.insert("marker_steps".to_string(), steps.to_string());
    let (outcome, expected_crashes) = match trial.fault {
        FaultSpec::RootCrash(point) => {
            let marker = point.marker(steps);
            let ops = marker_entry_ops(trial.p, steps, root_crash_plan(trial.seed, 0));
            let sup = run_chaos_supervised(
                trial.p,
                steps,
                root_crash_plan(trial.seed, ops[marker]),
                trial.ckpt_stride,
                dir,
                trial.journal,
            );
            fields.insert("restarts".to_string(), sup.restarts.to_string());
            fields.insert(
                "resumed_marker".to_string(),
                sup.resumed_marker
                    .map_or("none".to_string(), |m| m.to_string()),
            );
            (sup.outcome, 1usize)
        }
        fault => {
            let fault_plan = match fault {
                FaultSpec::None => FaultPlan::new(trial.seed),
                FaultSpec::Lossy => FaultSpec::lossy_plan(trial.seed),
                FaultSpec::Chaos => chaos_plan(trial.seed, trial.p),
                FaultSpec::RootCrash(_) => unreachable!("handled above"),
                FaultSpec::Straggler | FaultSpec::Ramp | FaultSpec::Imbalance => {
                    unreachable!("validate() keeps degraded faults off the chaos scenario")
                }
            };
            let mut cfg = ChameleonConfig::with_k(trial.p).with_retry_budget(trial.retry_budget);
            if trial.ckpt_stride > 0 {
                cfg = cfg
                    .with_checkpoint_stride(trial.ckpt_stride)
                    .with_checkpoint_dir(dir);
            }
            let expected = usize::from(fault == FaultSpec::Chaos);
            match run_chaos_result(trial.p, steps, fault_plan, trial.journal, cfg) {
                Ok(outcome) => (outcome, expected),
                Err(e) => {
                    fields.insert("error".to_string(), e);
                    return false;
                }
            }
        }
    };
    fields.insert("crashed".to_string(), format!("{:?}", outcome.crashed));
    let survivors = outcome.stats.iter().flatten().count();
    fields.insert("survivors".to_string(), survivors.to_string());
    if let Some(root) = outcome.stats.iter().flatten().next() {
        fields.insert("marker_calls".to_string(), root.marker_calls.to_string());
        fields.insert(
            "states".to_string(),
            format!(
                "c={} l={} at={} f={}",
                root.states.c, root.states.l, root.states.at, root.states.f
            ),
        );
        fields.insert(
            "degraded_slices".to_string(),
            root.degraded_slices.to_string(),
        );
        fields.insert(
            "lead_reelections".to_string(),
            root.lead_reelections.to_string(),
        );
        fields.insert("promotions".to_string(), root.promotions.to_string());
    }
    trace_fields(fields, "trace", &outcome.online_trace);
    fault_stat_fields(fields, &outcome.fault_stats);
    journal_fields(fields, outcome.journal.as_ref(), dir);
    if trial.ckpt_stride > 0 {
        if let Some((marker, _)) = latest_checkpoint(dir) {
            fields.insert("ckpt_latest_marker".to_string(), marker.to_string());
        }
    }
    outcome.online_trace.dynamic_size() > 0 && outcome.crashed.len() == expected_crashes
}

/// A trace of `n` distinct sites with signatures starting at `base + 1`.
fn trace_with_sites(rank: usize, n: usize, base: u64) -> CompressedTrace {
    let mut t = CompressedTrace::new();
    for s in 0..n {
        t.append(EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 64, Comm::WORLD),
            StackSig(base + s as u64 + 1),
            rank,
            1e-6,
        ));
    }
    t
}

/// SPMD with one rank-private site in the middle: the shared backbone
/// trims away; only the divergence reaches the aligner.
fn near_identical_trace(rank: usize, n: usize, base: u64) -> CompressedTrace {
    let mut t = CompressedTrace::new();
    for s in 0..n {
        let sig = if s == n / 2 {
            1_000_000 + base + rank as u64
        } else {
            base + s as u64 + 1
        };
        t.append(EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 64, Comm::WORLD),
            StackSig(sig),
            rank,
            1e-6,
        ));
    }
    t
}

fn merge_trial(plan: &MatrixPlan, trial: &Trial, fields: &mut BTreeMap<String, String>) -> bool {
    let n = plan.merge_base_n * trial.class.multiplier();
    fields.insert("n".to_string(), n.to_string());
    // Seeds offset the signature space so every seed coordinate produces
    // (and pins) a distinct merged artifact.
    let base = trial.seed.wrapping_mul(1 << 20);
    let make = |rank: usize| match trial.workload.as_str() {
        "MERGE_IDENTICAL" => trace_with_sites(rank, n, base),
        "MERGE_NEAR" => near_identical_trace(rank, n, base),
        "MERGE_DISJOINT" => trace_with_sites(rank, n, base + (rank as u64) * n as u64),
        other => unreachable!("validated merge case {other:?}"),
    };
    let a = make(0);
    let b = make(1);
    let fast = merge_traces(&a, &b);
    let reference = merge_traces_reference(&a, &b);
    let fast_text = trace_format::to_text(&fast);
    let agrees = fast_text == trace_format::to_text(&reference);
    fields.insert("fast_matches_reference".to_string(), agrees.to_string());
    trace_fields(fields, "merged", &fast);
    // The fold axis: merging p traces, ScalaTrace-at-finalize style. The
    // fold streams (build one trace, fold, drop) so a 16k-wide trial
    // holds the accumulator, not 16k materialized traces.
    //
    // Disjoint traces share nothing, so the accumulator grows by n every
    // fold and each merge runs the full aligner over it: O(w²·n²) total
    // for width w. Cap the disjoint width so that work stays constant
    // across classes (256 at the base n of 128), and record the width on
    // the result row — the cap is part of the pinned baseline, never a
    // silent truncation. Identical/near folds keep the accumulator flat
    // (shared backbone trims away) and stay uncapped to the full 16k.
    let fold_width = if trial.workload == "MERGE_DISJOINT" {
        trial.p.min((MERGE_DISJOINT_SITE_BUDGET / n).max(2))
    } else {
        trial.p
    };
    fields.insert("fold_width".to_string(), fold_width.to_string());
    let mut folded = make(0);
    for rank in 1..fold_width {
        folded = merge_traces(&folded, &make(rank));
    }
    trace_fields(fields, "fold", &folded);
    agrees && folded.dynamic_size() > 0
}

/// Accumulator-size budget for the `MERGE_DISJOINT` fold axis: width is
/// capped at `budget / n`, i.e. 256 traces at the default base size of
/// 128, keeping the fold's O(width²·n²) alignment work class-independent.
const MERGE_DISJOINT_SITE_BUDGET: usize = 256 * 128;

fn driver_trial(
    plan: &MatrixPlan,
    trial: &Trial,
    dir: &Path,
    fields: &mut BTreeMap<String, String>,
) -> bool {
    let workload = try_workload(&trial.workload, plan.scale).expect("validated name");
    let faults = match trial.fault {
        FaultSpec::None => None,
        FaultSpec::Lossy => Some(FaultSpec::lossy_plan(trial.seed)),
        other => unreachable!("validated: {other:?} needs CHAOS"),
    };
    let rep = drive(
        workload,
        trial.class,
        trial.p,
        Mode::Chameleon,
        Overrides {
            journal: trial.journal,
            faults,
            retry_budget: Some(trial.retry_budget),
            ckpt_stride: (trial.ckpt_stride > 0).then_some(trial.ckpt_stride),
            ckpt_dir: (trial.ckpt_stride > 0).then(|| dir.to_path_buf()),
            ..Default::default()
        },
    );
    fields.insert("crashed".to_string(), format!("{:?}", rep.crashed));
    fields.insert("app_vtime".to_string(), format!("{:?}", rep.app_vtime));
    if let Some(stats) = rep.cham_stats.first() {
        fields.insert("marker_calls".to_string(), stats.marker_calls.to_string());
        fields.insert(
            "states".to_string(),
            format!(
                "c={} l={} at={} f={}",
                stats.states.c, stats.states.l, stats.states.at, stats.states.f
            ),
        );
        fields.insert("leads".to_string(), stats.leads.to_string());
        fields.insert("call_paths".to_string(), stats.call_paths.to_string());
        fields.insert(
            "degraded_slices".to_string(),
            stats.degraded_slices.to_string(),
        );
    }
    fault_stat_fields(fields, &rep.fault_stats);
    journal_fields(fields, rep.journal.as_ref(), dir);
    if trial.ckpt_stride > 0 {
        if let Some((marker, _)) = latest_checkpoint(dir) {
            fields.insert("ckpt_latest_marker".to_string(), marker.to_string());
        }
    }
    match &rep.global_trace {
        Some(trace) => {
            trace_fields(fields, "trace", trace);
            trace.dynamic_size() > 0 && rep.crashed.is_empty()
        }
        None => false,
    }
}

/// Detect-and-mitigate scenario: run the degraded workload twice under
/// the *same* injected fault plan — once with the streaming detector (and
/// its mitigation ladder) armed, once detection-off — then score the
/// armed run's emitted `anomaly` events against the plan's ground truth
/// ([`FaultPlan::degraded_ranks`]). The trial passes only when precision
/// ≥ 0.9 and recall ≥ 0.8; the detection-off run provides the
/// mitigation-payoff reference (`retransmits_off`).
fn degraded_trial(
    plan: &MatrixPlan,
    trial: &Trial,
    dir: &Path,
    fields: &mut BTreeMap<String, String>,
) -> bool {
    let fault_plan = trial
        .fault
        .degraded_plan(trial.seed, trial.p)
        .expect("validated: a degraded fault");
    let run_with = |detector: Option<obs::DetectorConfig>, journal: bool| {
        drive(
            try_workload(&trial.workload, plan.scale).expect("validated name"),
            trial.class,
            trial.p,
            Mode::Chameleon,
            Overrides {
                journal,
                faults: Some(fault_plan.clone()),
                retry_budget: Some(trial.retry_budget),
                detector,
                ..Default::default()
            },
        )
    };
    // Detection-off reference first: same plan, no health plane.
    let off = run_with(None, false);
    let on = run_with(Some(degraded_detector()), trial.journal);

    let truth = fault_plan.degraded_ranks(trial.p);
    let journal = on
        .journal
        .as_ref()
        .expect("validated: degraded trials arm the journal");
    let rows = obs::query::anomalies(journal);
    let mut flagged: Vec<usize> = rows.iter().map(|r| r.rank as usize).collect();
    flagged.sort_unstable();
    flagged.dedup();
    let hits = flagged.iter().filter(|r| truth.contains(r)).count();
    let precision = if flagged.is_empty() {
        0.0
    } else {
        hits as f64 / flagged.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        hits as f64 / truth.len() as f64
    };
    // Detection latency: the first marker at which a truly-degraded rank
    // was flagged (the straggler/imbalance signals are present from
    // marker 0; the ramp's onset is nonce-scheduled, so its latency also
    // measures how long the ramp takes to bite).
    let first_hit = rows
        .iter()
        .filter(|r| truth.contains(&(r.rank as usize)))
        .map(|r| r.marker)
        .min();
    fields.insert("truth".to_string(), format!("{truth:?}"));
    fields.insert("flagged".to_string(), format!("{flagged:?}"));
    fields.insert("precision".to_string(), format!("{precision:.3}"));
    fields.insert("recall".to_string(), format!("{recall:.3}"));
    fields.insert(
        "detection_latency".to_string(),
        first_hit.map_or("none".to_string(), |m| m.to_string()),
    );
    fields.insert("anomaly_events".to_string(), rows.len().to_string());

    let sum_retransmits =
        |stats: &[mpisim::FaultStats]| -> u64 { stats.iter().map(|s| s.retransmits).sum() };
    fields.insert(
        "retransmits_on".to_string(),
        sum_retransmits(&on.fault_stats).to_string(),
    );
    fields.insert(
        "retransmits_off".to_string(),
        sum_retransmits(&off.fault_stats).to_string(),
    );
    if let Some(stats) = on.cham_stats.first() {
        fields.insert("marker_calls".to_string(), stats.marker_calls.to_string());
        fields.insert("anomaly_flags".to_string(), stats.anomaly_flags.to_string());
        fields.insert("quarantines".to_string(), stats.quarantines.to_string());
        fields.insert(
            "lead_demotions".to_string(),
            stats.lead_demotions.to_string(),
        );
    }
    fault_stat_fields(fields, &on.fault_stats);
    journal_fields(fields, Some(journal), dir);
    let trace_ok = match &on.global_trace {
        Some(trace) => {
            trace_fields(fields, "trace", trace);
            trace.dynamic_size() > 0
        }
        None => false,
    };
    trace_ok && on.crashed.is_empty() && off.crashed.is_empty() && precision >= 0.9 && recall >= 0.8
}

/// Execute one trial, writing its artifacts (`trial_input.json`,
/// `trial_output.json`, `journal.jsonl`, checkpoint blobs) under `dir`.
/// Panics inside an executor are contained: the trial records `ok =
/// false` with the panic text instead of killing the whole run.
pub fn run_trial(plan: &MatrixPlan, trial: &Trial, dir: &Path) -> TrialRecord {
    let _ = std::fs::remove_dir_all(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        let mut fields = BTreeMap::new();
        fields.insert(
            "error".to_string(),
            format!("create {}: {e}", dir.display()),
        );
        return TrialRecord {
            id: trial.id.clone(),
            ok: false,
            fields,
            wall_ns: 0,
        };
    }
    let input = Json::Obj(vec![
        ("id".to_string(), Json::Str(trial.id.clone())),
        ("workload".to_string(), Json::Str(trial.workload.clone())),
        (
            "class".to_string(),
            Json::Str(trial.class.label().to_string()),
        ),
        ("ranks".to_string(), Json::Num(trial.p as f64)),
        ("seed".to_string(), Json::Str(hex64(trial.seed))),
        ("fault".to_string(), Json::Str(trial.fault.id().to_string())),
        ("journal".to_string(), Json::Bool(trial.journal)),
        (
            "ckpt_stride".to_string(),
            Json::Num(trial.ckpt_stride as f64),
        ),
        (
            "retry_budget".to_string(),
            Json::Num(f64::from(trial.retry_budget)),
        ),
    ]);
    let _ = std::fs::write(dir.join("trial_input.json"), input.to_pretty() + "\n");

    let start = Instant::now();
    let mut fields = BTreeMap::new();
    fields.insert(
        "kind".to_string(),
        scenario_kind(&trial.workload).to_string(),
    );
    fields.insert("fault".to_string(), trial.fault.id().to_string());
    fields.insert("seed".to_string(), hex64(trial.seed));
    let ok =
        match std::panic::catch_unwind(AssertUnwindSafe(|| match scenario_kind(&trial.workload) {
            "chaos" => chaos_trial(plan, trial, dir, &mut fields),
            "merge" => merge_trial(plan, trial, &mut fields),
            _ if trial.fault.degrades() => degraded_trial(plan, trial, dir, &mut fields),
            _ => driver_trial(plan, trial, dir, &mut fields),
        })) {
            Ok(ok) => ok,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "executor panicked".to_string());
                fields.insert("error".to_string(), msg);
                false
            }
        };
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let output = Json::Obj(vec![
        ("id".to_string(), Json::Str(trial.id.clone())),
        ("ok".to_string(), Json::Bool(ok)),
        (
            "fields".to_string(),
            Json::Obj(
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ),
    ]);
    let _ = std::fs::write(dir.join("trial_output.json"), output.to_pretty() + "\n");

    TrialRecord {
        id: trial.id.clone(),
        ok,
        fields,
        wall_ns,
    }
}

fn scenario_kind(workload: &str) -> &'static str {
    if workload == "CHAOS" {
        "chaos"
    } else if workload.starts_with("MERGE_") {
        "merge"
    } else {
        "driver"
    }
}

// ---------------------------------------------------------------------
// Result tables
// ---------------------------------------------------------------------

/// Magic of a canonical result table.
pub const RESULTS_FORMAT: &str = "chameleon-matrix-results-v1";
/// Magic of a timing side-table.
pub const TIMINGS_FORMAT: &str = "chameleon-matrix-timings-v1";

/// The canonical (deterministic) result table of one plan run.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixResults {
    /// Plan name.
    pub plan: String,
    /// The plan's timing band, carried so a diff knows the tolerance.
    pub timing_tolerance_pct: f64,
    /// Trial rows in canonical (ID-sorted) order.
    pub trials: Vec<TrialRecord>,
}

impl MatrixResults {
    /// Canonical JSON text (byte-stable across reruns of the same plan).
    pub fn to_json(&self) -> String {
        let trials = self
            .trials
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("id".to_string(), Json::Str(t.id.clone())),
                    ("ok".to_string(), Json::Bool(t.ok)),
                    (
                        "fields".to_string(),
                        Json::Obj(
                            t.fields
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("format".to_string(), Json::Str(RESULTS_FORMAT.to_string())),
            ("plan".to_string(), Json::Str(self.plan.clone())),
            (
                "timing_tolerance_pct".to_string(),
                Json::Num(self.timing_tolerance_pct),
            ),
            ("trials".to_string(), Json::Arr(trials)),
        ]);
        doc.to_pretty() + "\n"
    }

    /// Parse a result table written by [`MatrixResults::to_json`].
    pub fn from_json(text: &str) -> Result<MatrixResults, String> {
        let doc = Json::parse(text)?;
        match doc.get("format").and_then(Json::as_str) {
            Some(RESULTS_FORMAT) => {}
            other => return Err(format!("not a matrix result table (format {other:?})")),
        }
        let plan = doc
            .get("plan")
            .and_then(Json::as_str)
            .ok_or("missing plan name")?
            .to_string();
        let timing_tolerance_pct = doc
            .get("timing_tolerance_pct")
            .and_then(Json::as_f64)
            .ok_or("missing timing_tolerance_pct")?;
        let mut trials = Vec::new();
        for row in doc
            .get("trials")
            .and_then(Json::as_array)
            .ok_or("missing trials array")?
        {
            let id = row
                .get("id")
                .and_then(Json::as_str)
                .ok_or("trial row without id")?
                .to_string();
            let ok = row
                .get("ok")
                .and_then(Json::as_bool)
                .ok_or(format!("trial {id} without ok flag"))?;
            let mut fields = BTreeMap::new();
            match row.get("fields") {
                Some(Json::Obj(entries)) => {
                    for (k, v) in entries {
                        let v = v
                            .as_str()
                            .ok_or(format!("trial {id} field {k} is not a string"))?;
                        fields.insert(k.clone(), v.to_string());
                    }
                }
                _ => return Err(format!("trial {id} without fields object")),
            }
            trials.push(TrialRecord {
                id,
                ok,
                fields,
                wall_ns: 0,
            });
        }
        Ok(MatrixResults {
            plan,
            timing_tolerance_pct,
            trials,
        })
    }
}

/// Serialize a timing side-table (trial ID → wall nanoseconds).
pub fn timings_to_json(plan: &str, timings: &BTreeMap<String, u64>) -> String {
    let doc = Json::Obj(vec![
        ("format".to_string(), Json::Str(TIMINGS_FORMAT.to_string())),
        ("plan".to_string(), Json::Str(plan.to_string())),
        (
            "wall_ns".to_string(),
            Json::Obj(
                timings
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
    ]);
    doc.to_pretty() + "\n"
}

/// Parse a timing side-table.
pub fn timings_from_json(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let doc = Json::parse(text)?;
    match doc.get("format").and_then(Json::as_str) {
        Some(TIMINGS_FORMAT) => {}
        other => return Err(format!("not a matrix timing table (format {other:?})")),
    }
    let mut out = BTreeMap::new();
    match doc.get("wall_ns") {
        Some(Json::Obj(entries)) => {
            for (k, v) in entries {
                out.insert(
                    k.clone(),
                    v.as_u64().ok_or(format!("timing {k} is not an integer"))?,
                );
            }
        }
        _ => return Err("missing wall_ns object".to_string()),
    }
    Ok(out)
}

/// Run every trial of a validated plan under `out_root/<plan-name>/`,
/// with at most `jobs` concurrent trials, and write `results.json` plus
/// `timings.json` there. Returns the canonical results and the timings.
pub fn run_plan(
    plan: &MatrixPlan,
    out_root: &Path,
    jobs: usize,
) -> Result<(MatrixResults, BTreeMap<String, u64>), String> {
    run_plan_with_push(plan, out_root, jobs, None)
}

/// A post-trial artifact hook: called with the trial ID and its artifact
/// directory once the trial's files are on disk. The `chamtrace matrix
/// run --push <addr>` flag uses this to stream each trial's
/// `journal.jsonl` at a trace-service daemon without `workloads` knowing
/// anything about HTTP — the transport lives in the caller.
pub type PushHook<'a> = &'a (dyn Fn(&str, &Path) + Sync);

/// [`run_plan`] with an optional per-trial artifact hook. The hook runs
/// on the worker thread that finished the trial, after the trial's
/// artifacts are written and before its slot is considered done.
pub fn run_plan_with_push(
    plan: &MatrixPlan,
    out_root: &Path,
    jobs: usize,
    push: Option<PushHook<'_>>,
) -> Result<(MatrixResults, BTreeMap<String, u64>), String> {
    plan.validate()?;
    let plan_dir = out_root.join(&plan.name);
    std::fs::create_dir_all(&plan_dir)
        .map_err(|e| format!("cannot create {}: {e}", plan_dir.display()))?;
    let trials = plan.expand();
    let records = run_pool(&trials, jobs, |_, trial| {
        let trial_dir = plan_dir.join(&trial.id);
        let record = run_trial(plan, trial, &trial_dir);
        if let Some(hook) = push {
            hook(&trial.id, &trial_dir);
        }
        record
    });
    let timings: BTreeMap<String, u64> =
        records.iter().map(|r| (r.id.clone(), r.wall_ns)).collect();
    let results = MatrixResults {
        plan: plan.name.clone(),
        timing_tolerance_pct: plan.timing_tolerance_pct,
        trials: records,
    };
    std::fs::write(plan_dir.join("results.json"), results.to_json())
        .map_err(|e| format!("write results.json: {e}"))?;
    std::fs::write(
        plan_dir.join("timings.json"),
        timings_to_json(&plan.name, &timings),
    )
    .map_err(|e| format!("write timings.json: {e}"))?;
    Ok((results, timings))
}

// ---------------------------------------------------------------------
// Regression diff
// ---------------------------------------------------------------------

/// The first divergence between two result tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Trial the divergence is in ("-" for table-level mismatches).
    pub trial: String,
    /// Metric (field key) that diverged.
    pub metric: String,
    /// Baseline value.
    pub want: String,
    /// Current value.
    pub got: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trial {} metric {}: baseline {}, got {}",
            self.trial, self.metric, self.want, self.got
        )
    }
}

/// Exact comparison of the deterministic tables: every baseline trial
/// must be present with identical `ok` and identical fields (and no
/// extra trials or fields may appear). Returns the *first* divergence in
/// canonical order, or `None` when the tables agree.
pub fn diff_results(base: &MatrixResults, cur: &MatrixResults) -> Option<Divergence> {
    if base.plan != cur.plan {
        return Some(Divergence {
            trial: "-".to_string(),
            metric: "plan".to_string(),
            want: base.plan.clone(),
            got: cur.plan.clone(),
        });
    }
    let cur_by_id: BTreeMap<&str, &TrialRecord> =
        cur.trials.iter().map(|t| (t.id.as_str(), t)).collect();
    for b in &base.trials {
        let Some(c) = cur_by_id.get(b.id.as_str()) else {
            return Some(Divergence {
                trial: b.id.clone(),
                metric: "presence".to_string(),
                want: "present".to_string(),
                got: "missing".to_string(),
            });
        };
        if b.ok != c.ok {
            return Some(Divergence {
                trial: b.id.clone(),
                metric: "ok".to_string(),
                want: b.ok.to_string(),
                got: c.ok.to_string(),
            });
        }
        for (key, want) in &b.fields {
            match c.fields.get(key) {
                Some(got) if got == want => {}
                got => {
                    return Some(Divergence {
                        trial: b.id.clone(),
                        metric: key.clone(),
                        want: want.clone(),
                        got: got.cloned().unwrap_or_else(|| "missing".to_string()),
                    });
                }
            }
        }
        if let Some((key, got)) = c.fields.iter().find(|(k, _)| !b.fields.contains_key(*k)) {
            return Some(Divergence {
                trial: b.id.clone(),
                metric: key.clone(),
                want: "absent".to_string(),
                got: got.clone(),
            });
        }
    }
    let base_ids: BTreeMap<&str, ()> = base.trials.iter().map(|t| (t.id.as_str(), ())).collect();
    if let Some(extra) = cur
        .trials
        .iter()
        .find(|t| !base_ids.contains_key(t.id.as_str()))
    {
        return Some(Divergence {
            trial: extra.id.clone(),
            metric: "presence".to_string(),
            want: "absent".to_string(),
            got: "present".to_string(),
        });
    }
    None
}

/// Percentage-band comparison of wall timings for trials present in both
/// tables: |cur − base| must stay within `tol_pct`% of the baseline.
/// Trials only one side timed are skipped — wall clocks are advisory,
/// not part of the determinism contract.
pub fn diff_timings(
    base: &BTreeMap<String, u64>,
    cur: &BTreeMap<String, u64>,
    tol_pct: f64,
) -> Option<Divergence> {
    for (id, &want) in base {
        let Some(&got) = cur.get(id) else { continue };
        let delta = got.abs_diff(want) as f64;
        if delta > (want as f64) * tol_pct / 100.0 {
            return Some(Divergence {
                trial: id.clone(),
                metric: "wall_ns".to_string(),
                want: format!("{want} (±{tol_pct}%)"),
                got: got.to_string(),
            });
        }
    }
    None
}

/// When a `journal_digest` divergence names a trial and both runs left
/// `journal.jsonl` artifacts on disk, drill into the first diverging
/// event via [`obs::query::diff`]. `base_dir` / `cur_dir` are the plan
/// output directories (the parents of the per-trial dirs).
pub fn journal_drilldown(base_dir: &Path, cur_dir: &Path, trial: &str) -> Option<String> {
    let load = |dir: &Path| -> Option<obs::RunJournal> {
        let text = std::fs::read_to_string(dir.join(trial).join("journal.jsonl")).ok()?;
        obs::RunJournal::from_jsonl(&text).ok()
    };
    let a = load(base_dir)?;
    let b = load(cur_dir)?;
    obs::query::diff(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan_text() -> &'static str {
        r#"{
            "name": "unit",
            "workloads": ["CHAOS", "BT"],
            "ranks": [4],
            "seeds": [1, 2],
            "faults": ["lossy"],
            "journal": [true, false],
            "steps": 12
        }"#
    }

    #[test]
    fn json_roundtrip_and_accessors() {
        let text = r#"{"a": [1, 2.5, -3], "b": "x\nyA", "c": true, "d": null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\nyA"));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_u64(), None, "negative is not a u64");
        // Pretty output reparses to the same value.
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn plan_parses_with_defaults() {
        let plan = MatrixPlan::from_json(small_plan_text()).unwrap();
        plan.validate().unwrap();
        assert_eq!(plan.classes, vec![Class::A]);
        assert_eq!(plan.ckpt_strides, vec![0]);
        assert_eq!(plan.retry_budgets, vec![1]);
        assert_eq!(plan.steps, 12);
        assert_eq!(plan.scale, 25);
        // workloads x classes x ranks x seeds x faults x journal x strides x budgets
        #[allow(clippy::identity_op)]
        let want = 2 * 1 * 1 * 2 * 1 * 2 * 1 * 1;
        assert_eq!(plan.cardinality(), want);
    }

    #[test]
    fn plan_rejects_typos_and_bad_axes() {
        assert!(MatrixPlan::from_json(
            r#"{"name":"x","workloads":["BT"],"ranks":[2],"seeds":[1],"stepz":3}"#
        )
        .unwrap_err()
        .contains("unknown plan key"));
        let dup =
            MatrixPlan::from_json(r#"{"name":"x","workloads":["BT"],"ranks":[2,2],"seeds":[1]}"#)
                .unwrap();
        assert!(dup.validate().unwrap_err().contains("repeats"));
        let crashy = MatrixPlan::from_json(
            r#"{"name":"x","workloads":["BT"],"ranks":[2],"seeds":[1],"faults":["chaos"]}"#,
        )
        .unwrap();
        assert!(crashy.validate().unwrap_err().contains("CHAOS"));
        let rc = MatrixPlan::from_json(
            r#"{"name":"x","workloads":["CHAOS"],"ranks":[4],"seeds":[1],"faults":["rootcrash@mid"]}"#,
        )
        .unwrap();
        assert!(rc.validate().unwrap_err().contains("ckpt_strides"));
        let merge_faulty = MatrixPlan::from_json(
            r#"{"name":"x","workloads":["MERGE_NEAR"],"ranks":[4],"seeds":[1],"faults":["lossy"]}"#,
        )
        .unwrap();
        assert!(merge_faulty.validate().unwrap_err().contains("MERGE_"));
    }

    #[test]
    fn expansion_is_sorted_and_exact() {
        let plan = MatrixPlan::from_json(small_plan_text()).unwrap();
        let trials = plan.expand();
        assert_eq!(trials.len(), plan.cardinality());
        let ids: Vec<&str> = trials.iter().map(|t| t.id.as_str()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "canonical order is the ID sort");
        let mut deduped = sorted.clone();
        deduped.dedup();
        assert_eq!(deduped.len(), ids.len(), "IDs are unique");
    }

    #[test]
    fn pool_preserves_item_order() {
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1, 3, 8] {
            let out = run_pool(&items, jobs, |i, &v| {
                // Stagger completion to shake out ordering bugs.
                std::thread::sleep(std::time::Duration::from_micros((v % 7) as u64 * 50));
                (i, v * 2)
            });
            assert_eq!(out, items.iter().map(|&v| (v, v * 2)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fault_specs_parse_and_tag() {
        for (s, id) in [
            ("none", "none"),
            ("lossy", "lossy"),
            ("chaos", "chaos"),
            ("rootcrash@first", "rootcrash_first"),
            ("rootcrash@mid", "rootcrash_mid"),
            ("rootcrash@last", "rootcrash_last"),
            ("straggler", "straggler"),
            ("ramp", "ramp"),
            ("imbalance", "imbalance"),
        ] {
            assert_eq!(FaultSpec::parse(s).unwrap().id(), id);
        }
        assert!(FaultSpec::parse("rootcrash@soon").is_err());
        assert!(FaultSpec::RootCrash(CrashPoint::Mid).crashes());
        assert!(!FaultSpec::Lossy.crashes());
        for spec in [FaultSpec::Straggler, FaultSpec::Ramp, FaultSpec::Imbalance] {
            assert!(spec.degrades() && !spec.crashes());
            let plan = spec
                .degraded_plan(3, 6)
                .expect("degraded specs carry a plan");
            assert!(plan.degrades());
            assert!(!plan.degraded_ranks(6).is_empty());
        }
        assert!(!FaultSpec::Lossy.degrades());
        assert!(FaultSpec::Lossy.degraded_plan(3, 6).is_none());
        assert_eq!(CrashPoint::Mid.marker(40), 20);
        assert_eq!(CrashPoint::Last.marker(40), 39);
    }

    #[test]
    fn degraded_plan_validation_rules() {
        // Degraded faults only ride the scenario workloads.
        let bt = MatrixPlan::from_json(
            r#"{"name":"x","workloads":["BT"],"ranks":[4],"seeds":[1],"faults":["straggler"]}"#,
        )
        .unwrap();
        assert!(bt.validate().unwrap_err().contains("DRING/DGRID"));
        let chaos = MatrixPlan::from_json(
            r#"{"name":"x","workloads":["CHAOS"],"ranks":[4],"seeds":[1],"faults":["ramp"]}"#,
        )
        .unwrap();
        assert!(chaos.validate().unwrap_err().contains("DRING/DGRID"));
        // The heartbeat ring needs an even world.
        let odd = MatrixPlan::from_json(
            r#"{"name":"x","workloads":["DRING"],"ranks":[5],"seeds":[1],"faults":["straggler"]}"#,
        )
        .unwrap();
        assert!(odd.validate().unwrap_err().contains("even world"));
        // Scoring reads the journal.
        let nojournal = MatrixPlan::from_json(
            r#"{"name":"x","workloads":["DGRID"],"ranks":[6],"seeds":[1],
                "faults":["imbalance"],"journal":[false]}"#,
        )
        .unwrap();
        assert!(nojournal.validate().unwrap_err().contains("journal"));
        // The well-formed shape passes.
        let good = MatrixPlan::from_json(
            r#"{"name":"x","workloads":["DRING","DGRID"],"ranks":[6],"seeds":[1,2],
                "faults":["straggler","ramp","imbalance"]}"#,
        )
        .unwrap();
        good.validate().unwrap();
        assert_eq!(good.cardinality(), 12);
    }

    #[test]
    fn degraded_trial_scores_against_ground_truth() {
        let plan = MatrixPlan::from_json(
            r#"{"name":"unit-degraded","workloads":["DRING"],"ranks":[6],"seeds":[1],
                "faults":["straggler"]}"#,
        )
        .unwrap();
        plan.validate().unwrap();
        let trials = plan.expand();
        assert_eq!(trials.len(), 1);
        let dir =
            std::env::temp_dir().join(format!("cham_matrix_degraded_unit_{}", std::process::id()));
        let record = run_trial(&plan, &trials[0], &dir.join(&trials[0].id));
        assert!(record.ok, "{:?}", record.fields);
        assert_eq!(record.fields["kind"], "driver");
        assert_eq!(record.fields["truth"], "[5]");
        assert_eq!(record.fields["flagged"], "[5]");
        assert_eq!(record.fields["precision"], "1.000");
        assert_eq!(record.fields["recall"], "1.000");
        assert_ne!(record.fields["detection_latency"], "none");
        assert!(record.fields.contains_key("retransmits_on"));
        assert!(record.fields.contains_key("retransmits_off"));
        // The armed journal landed on disk for drill-down.
        assert!(dir.join(&trials[0].id).join("journal.jsonl").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_trial_is_deterministic_and_seed_sensitive() {
        let plan = MatrixPlan::from_json(
            r#"{"name":"m","workloads":["MERGE_NEAR"],"ranks":[4],"seeds":[1,2],"merge_base_n":64}"#,
        )
        .unwrap();
        plan.validate().unwrap();
        let trials = plan.expand();
        let mut digests = Vec::new();
        for trial in &trials {
            let mut a = BTreeMap::new();
            let mut b = BTreeMap::new();
            assert!(merge_trial(&plan, trial, &mut a));
            assert!(merge_trial(&plan, trial, &mut b));
            assert_eq!(a, b, "merge trials are pure");
            assert_eq!(a["fast_matches_reference"], "true");
            digests.push(a["merged_digest"].clone());
        }
        assert_ne!(digests[0], digests[1], "seeds produce distinct artifacts");
    }

    #[test]
    fn merge_fold_width_is_recorded_and_caps_only_disjoint() {
        // Cheap, non-binding coordinates: the policy (record always, cap
        // only MERGE_DISJOINT, never below 2) is pinned here; the binding
        // 16k rows live in the committed merge-scaling baseline.
        let plan = MatrixPlan::from_json(
            r#"{"name":"w","workloads":["MERGE_IDENTICAL","MERGE_DISJOINT"],
                "ranks":[4,64],"seeds":[0],"merge_base_n":64}"#,
        )
        .unwrap();
        plan.validate().unwrap();
        for trial in &plan.expand() {
            let mut fields = BTreeMap::new();
            assert!(merge_trial(&plan, trial, &mut fields));
            let width: usize = fields["fold_width"].parse().unwrap();
            let n: usize = fields["n"].parse().unwrap();
            let expect = if trial.workload == "MERGE_DISJOINT" {
                trial.p.min((MERGE_DISJOINT_SITE_BUDGET / n).max(2))
            } else {
                trial.p
            };
            assert_eq!(width, expect, "{}: fold width policy", trial.id);
            // The fold really had that width: disjoint folds concatenate,
            // so the merged size is exactly width * n.
            if trial.workload == "MERGE_DISJOINT" {
                assert_eq!(
                    fields["fold_events"],
                    (width * n).to_string(),
                    "{}: disjoint fold size",
                    trial.id
                );
            }
        }
    }

    #[test]
    fn results_roundtrip_and_diff_names_first_divergence() {
        let mk = |ok: bool, digest: &str| {
            let mut fields = BTreeMap::new();
            fields.insert("trace_digest".to_string(), digest.to_string());
            fields.insert("crashed".to_string(), "[]".to_string());
            TrialRecord {
                id: "BT-A-p0004-none-s0000000000000001-j1-k00-r01".to_string(),
                ok,
                fields,
                wall_ns: 123,
            }
        };
        let base = MatrixResults {
            plan: "unit".to_string(),
            timing_tolerance_pct: 50.0,
            trials: vec![mk(true, "0xaa")],
        };
        let parsed = MatrixResults::from_json(&base.to_json()).unwrap();
        assert_eq!(parsed.plan, base.plan);
        assert_eq!(parsed.trials[0].fields, base.trials[0].fields);
        assert_eq!(diff_results(&base, &parsed), None);

        let mut cur = base.clone();
        cur.trials[0]
            .fields
            .insert("trace_digest".to_string(), "0xbb".to_string());
        let d = diff_results(&base, &cur).unwrap();
        assert_eq!(d.metric, "trace_digest");
        assert_eq!((d.want.as_str(), d.got.as_str()), ("0xaa", "0xbb"));
        assert!(d.to_string().contains("BT-A-p0004"), "{d}");

        let mut missing = base.clone();
        missing.trials.clear();
        assert_eq!(diff_results(&base, &missing).unwrap().metric, "presence");
        assert_eq!(
            diff_results(&missing, &base).unwrap().got,
            "present",
            "extra trials diverge too"
        );

        let mut flipped = base.clone();
        flipped.trials[0].ok = false;
        assert_eq!(diff_results(&base, &flipped).unwrap().metric, "ok");
    }

    #[test]
    fn timing_bands_tolerate_noise_but_not_regressions() {
        let mut base = BTreeMap::new();
        base.insert("t".to_string(), 1_000u64);
        let mut cur = BTreeMap::new();
        cur.insert("t".to_string(), 1_400u64);
        assert_eq!(diff_timings(&base, &cur, 50.0), None);
        cur.insert("t".to_string(), 1_600u64);
        let d = diff_timings(&base, &cur, 50.0).unwrap();
        assert_eq!(d.metric, "wall_ns");
        // A trial only one side timed is skipped.
        cur.clear();
        assert_eq!(diff_timings(&base, &cur, 50.0), None);
    }

    #[test]
    fn timings_table_roundtrips() {
        let mut t = BTreeMap::new();
        t.insert("a".to_string(), 42u64);
        t.insert("b".to_string(), 7_000_000_000u64);
        let text = timings_to_json("unit", &t);
        assert_eq!(timings_from_json(&text).unwrap(), t);
    }
}
