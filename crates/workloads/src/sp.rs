//! NPB SP skeleton: scalar-pentadiagonal ADI solver.
//!
//! Structurally like BT (1-D line decomposition, three directional
//! sweeps, 3 Call-Path groups) but with more, smaller exchanges per sweep
//! — SP factors into scalar pentadiagonal systems, trading message size
//! for message count. Table II: 500 iterations at Call_Frequency 20 with
//! two trailing norm phases (25 markers: 1 C / 21 L / 3 AT).

use scalatrace::TracedProc;

use crate::{scale, Class, RunSpec, Workload};

/// The SP skeleton.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sp;

impl Sp {
    fn sweep(
        tp: &mut TracedProc,
        sites: (&'static str, &'static str),
        tags: (u32, u32),
        bytes: usize,
    ) {
        let me = tp.rank();
        let p = tp.size();
        // Two half-size exchanges per direction (forward + back
        // substitution faces).
        let payload = vec![0u8; bytes / 2 + scale::count_jitter(me, p)];
        for round in 0..2u32 {
            let (t_out, t_in) = (tags.0 + round * 100, tags.1 + round * 100);
            if me > 0 {
                tp.sendrecv(sites.0, me - 1, t_in, &payload, me - 1, t_out);
            }
            if me + 1 < p {
                tp.sendrecv(sites.1, me + 1, t_out, &payload, me + 1, t_in);
            }
        }
    }
}

impl Workload for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn spec(&self, _class: Class, _p: usize) -> RunSpec {
        // 460 + 20 + 20 = 500 iterations, freq 20 -> 25 markers:
        // AT(first), C, 21 L, then two phase markers counted AT.
        RunSpec {
            main_steps: 460,
            phase_steps: vec![20, 20],
            call_frequency: 20,
            k: 3,
        }
    }

    fn step(&self, tp: &mut TracedProc, class: Class, _step: usize) {
        let p = tp.size();
        let bytes = scale::face_bytes(class, p, false);
        let dt = scale::compute_dt(class, p, false);
        tp.frame("sp_adi", |tp| {
            tp.frame("sp_x", |tp| {
                tp.compute(dt / 3.0);
                Sp::sweep(tp, ("spx_w", "spx_e"), (20, 21), bytes);
            });
            tp.frame("sp_y", |tp| {
                tp.compute(dt / 3.0);
                Sp::sweep(tp, ("spy_w", "spy_e"), (22, 23), bytes);
            });
            tp.frame("sp_z", |tp| {
                tp.compute(dt / 3.0);
                Sp::sweep(tp, ("spz_w", "spz_e"), (24, 25), bytes);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{World, WorldConfig};
    use std::collections::HashSet;

    #[test]
    fn spec_matches_table2() {
        let spec = Sp.spec(Class::D, 1024);
        assert_eq!(spec.total_steps(), 500);
        assert_eq!(spec.expected_marker_calls(), 25);
        assert_eq!(spec.k, 3);
        assert_eq!(spec.phase_steps.len(), 2, "two trailing norm phases");
    }

    #[test]
    fn three_callpath_groups() {
        let report = World::new(WorldConfig::for_tests(5))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Sp.step(&mut tp, Class::A, 0);
                tp.tracer_mut().rotate_interval().call_path
            })
            .unwrap();
        let distinct: HashSet<_> = report.results.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn sp_and_bt_distinct_callpaths() {
        // Same rank positions, different codes: signatures must differ
        // (different call sites).
        let report = World::new(WorldConfig::for_tests(3))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Sp.step(&mut tp, Class::A, 0);
                let sp_sig = tp.tracer_mut().rotate_interval().call_path;
                crate::bt::Bt.step(&mut tp, Class::A, 0);
                let bt_sig = tp.tracer_mut().rotate_interval().call_path;
                sp_sig != bt_sig
            })
            .unwrap();
        assert!(report.results.iter().all(|&d| d));
    }
}
