//! The experiment driver: run any workload under any instrumentation.
//!
//! One entry point, [`run`], covers the paper's four measurement
//! configurations:
//!
//! * [`Mode::AppOnly`] — the non-instrumented application (the "APP" bars
//!   of Figures 4–7); tracing is disabled, markers are skipped;
//! * [`Mode::ScalaTrace`] — full per-rank tracing, all-rank inter-node
//!   compression at finalize (the "ScalaTrace" bars);
//! * [`Mode::Acurdion`] — full per-rank tracing, signature clustering +
//!   top-K merge at finalize (Table III's comparator);
//! * [`Mode::Chameleon`] — online clustering at markers (the paper's
//!   system).
//!
//! Reported times separate the two time domains deliberately:
//! `app_vtime` is deterministic *virtual* seconds of the simulated
//! application, while the overhead fields come from the deterministic
//! *tool clock* (modeled compute via [`mpisim::WorkModel`] plus modeled
//! communication and waits) — mirroring the paper's split between
//! application runtime and tool overhead without measuring the
//! oversubscribed simulation host.

use std::sync::Arc;
use std::time::Duration;

use chameleon::baselines::{acurdion_finalize, scalatrace_finalize, BaselineOutcome};
use chameleon::{AlgoChoice, Chameleon, ChameleonConfig, ChameleonStats};
use mpisim::{FaultPlan, FaultStats, World, WorldConfig};
use scalatrace::{CompressedTrace, TracedProc};

use crate::{Class, RunSpec, Workload, PHASE_FRAMES};

/// Instrumentation mode.
#[derive(Debug, Clone)]
pub enum Mode {
    /// No tracing at all.
    AppOnly,
    /// Plain ScalaTrace (all-rank merge at finalize).
    ScalaTrace,
    /// ACURDION-style finalize-time clustering.
    Acurdion,
    /// Chameleon online clustering.
    Chameleon,
}

/// Optional overrides for experiment sweeps.
#[derive(Debug, Clone, Default)]
pub struct Overrides {
    /// Override `Call_Frequency` (Figure 9's sweep).
    pub call_frequency: Option<u64>,
    /// Override K.
    pub k: Option<usize>,
    /// Override the clustering algorithm (ablations).
    pub algo: Option<AlgoChoice>,
    /// Arm the flight recorder and gather a run journal (off by default —
    /// the recorder is zero-cost when disabled, but the journal itself
    /// holds every event).
    pub journal: bool,
    /// Write the gathered journal to this path as canonical JSONL after
    /// the run (implies `journal`). This is the no-Rust-required exit
    /// ramp: point it at a file, then query it with
    /// `chamtrace journal <summarize|timeline|spans|metrics|diff>`.
    pub journal_path: Option<std::path::PathBuf>,
    /// Arm this fault plan on the world: the run goes through
    /// [`World::run_faulty`], crashed ranks report `None`, and the report
    /// carries `crashed` plus per-rank fault counters. Used by the
    /// scenario-matrix runner to drive named workloads over lossy links.
    pub faults: Option<FaultPlan>,
    /// Override the Chameleon reliable-protocol retry budget
    /// ([`ChameleonConfig::with_retry_budget`]; Chameleon mode only).
    pub retry_budget: Option<u32>,
    /// Arm durable checkpoints every N processed markers (Chameleon mode
    /// only; see [`ChameleonConfig::with_checkpoint_stride`]).
    pub ckpt_stride: Option<u64>,
    /// Persist checkpoint blobs into this directory (with `ckpt_stride`).
    pub ckpt_dir: Option<std::path::PathBuf>,
    /// Arm the streaming anomaly detector and its mitigation ladder
    /// ([`ChameleonConfig::with_detector`]; Chameleon mode only).
    pub detector: Option<obs::DetectorConfig>,
    /// Run the world on the pre-refactor free-running thread scheduler
    /// instead of the default event scheduler. The differential suite
    /// (`tests/sched_differential.rs`) uses this as its oracle; every
    /// simulation-visible output is byte-identical between the two.
    pub thread_sched: bool,
    /// Event-scheduler worker-pool size (`0` = host parallelism). Results
    /// are invariant under this knob; it trades wall-clock only.
    pub workers: usize,
}

/// Uniform measurements from one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: &'static str,
    /// World size.
    pub p: usize,
    /// Deterministic virtual execution time of the application.
    pub app_vtime: f64,
    /// Real wall-clock of the whole run (simulation included).
    pub wall: Duration,
    /// The global/online trace (rank 0), if the mode produces one.
    pub global_trace: Option<CompressedTrace>,
    /// Per-rank Chameleon stats (Chameleon mode only).
    pub cham_stats: Vec<ChameleonStats>,
    /// Per-rank baseline outcomes (ScalaTrace/ACURDION modes only).
    pub baseline: Vec<BaselineSummary>,
    /// The gathered flight-recorder journal (`Overrides::journal` only).
    pub journal: Option<obs::RunJournal>,
    /// Ranks killed by the armed fault plan, ascending (empty without
    /// `Overrides::faults`).
    pub crashed: Vec<usize>,
    /// Per-rank fault counters (all zeros without `Overrides::faults`).
    pub fault_stats: Vec<FaultStats>,
    /// The spec the run used (after overrides).
    pub spec: RunSpec,
}

/// The timing/memory numbers kept from a baseline rank (the trace itself
/// is only retained from rank 0).
#[derive(Debug, Clone, Copy)]
pub struct BaselineSummary {
    /// Clustering time (zero for plain ScalaTrace).
    pub clustering_time: Duration,
    /// Inter-node merge time.
    pub intercomp_time: Duration,
    /// Trace bytes held at finalize.
    pub trace_bytes: usize,
}

impl From<&BaselineOutcome> for BaselineSummary {
    fn from(b: &BaselineOutcome) -> Self {
        BaselineSummary {
            clustering_time: b.clustering_time,
            intercomp_time: b.intercomp_time,
            trace_bytes: b.trace_bytes,
        }
    }
}

impl RunReport {
    /// Total tool overhead aggregated across ranks, the paper's headline
    /// comparison number ("aggregated wall-clock times across all
    /// nodes").
    pub fn total_overhead(&self) -> Duration {
        let cham: Duration = self.cham_stats.iter().map(|s| s.total_overhead()).sum();
        let base: Duration = self
            .baseline
            .iter()
            .map(|b| b.clustering_time + b.intercomp_time)
            .sum();
        cham + base
    }

    /// Aggregated clustering time.
    pub fn clustering_overhead(&self) -> Duration {
        let cham: Duration = self
            .cham_stats
            .iter()
            .map(|s| s.clustering_time + s.vote_time + s.signature_time)
            .sum();
        let base: Duration = self.baseline.iter().map(|b| b.clustering_time).sum();
        cham + base
    }

    /// Aggregated inter-compression time.
    pub fn intercomp_overhead(&self) -> Duration {
        let cham: Duration = self.cham_stats.iter().map(|s| s.intercomp_time).sum();
        let base: Duration = self.baseline.iter().map(|b| b.intercomp_time).sum();
        cham + base
    }
}

/// A workload with its iteration counts divided by a scale factor while
/// the marker-state *shape* is preserved exactly: marker calls, state
/// sequences, and Call-Path structure are unchanged; only the number of
/// timesteps per marker interval shrinks. Lets the harness reproduce the
/// paper's tables on small machines and scale back to full fidelity with
/// `scale = 1`.
pub struct ScaledWorkload<W> {
    inner: W,
    scale: usize,
}

impl<W: Workload> ScaledWorkload<W> {
    /// Wrap `inner`, dividing steps and frequency by `scale`.
    pub fn new(inner: W, scale: usize) -> Self {
        assert!(scale >= 1);
        ScaledWorkload { inner, scale }
    }
}

impl<W: Workload> Workload for ScaledWorkload<W> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn spec(&self, class: Class, p: usize) -> RunSpec {
        let mut spec = self.inner.spec(class, p);
        // Use the largest divisor of the call frequency that does not
        // exceed the requested scale: dividing steps and frequency by the
        // same exact divisor preserves marker counts and state shapes
        // bit-for-bit (a non-divisor would round the frequency and drift
        // the marker count).
        let limit = self.scale.min(spec.call_frequency as usize).max(1);
        let freq = spec.call_frequency as usize;
        let scale = (1..=limit)
            .rev()
            .find(|s| freq.is_multiple_of(*s))
            .unwrap_or(1);
        spec.main_steps = (spec.main_steps / scale).max(1);
        for ph in spec.phase_steps.iter_mut() {
            *ph = (*ph / scale).max(1);
        }
        spec.call_frequency = (spec.call_frequency / scale as u64).max(1);
        spec
    }

    fn step(&self, tp: &mut TracedProc, class: Class, step: usize) {
        self.inner.step(tp, class, step)
    }
}

/// Execute `workload` on `p` simulated ranks under `mode`.
pub fn run(
    workload: Arc<dyn Workload>,
    class: Class,
    p: usize,
    mode: Mode,
    overrides: Overrides,
) -> RunReport {
    let mut spec = workload.spec(class, p);
    if let Some(f) = overrides.call_frequency {
        spec.call_frequency = f;
    }
    if let Some(k) = overrides.k {
        spec.k = k;
    }
    let algo = overrides.algo.unwrap_or_default();
    let name = workload.name();
    let spec_for_ranks = spec.clone();
    let mode_for_ranks = mode.clone();
    let retry_budget = overrides.retry_budget;
    let ckpt_stride = overrides.ckpt_stride.unwrap_or(0);
    let ckpt_dir = overrides.ckpt_dir.clone();
    let detector = overrides.detector;

    enum RankOutcome {
        App,
        Baseline(BaselineOutcome),
        Chameleon(chameleon::FinalizeOutcome),
    }

    let program = move |proc: &mut mpisim::Proc| {
        let mut tp = TracedProc::new(proc);
        let spec = &spec_for_ranks;
        let mut cham = match mode_for_ranks {
            Mode::Chameleon => {
                let mut cfg = ChameleonConfig::with_k(spec.k)
                    .with_frequency(spec.call_frequency)
                    .with_algo(algo);
                if let Some(budget) = retry_budget {
                    cfg = cfg.with_retry_budget(budget);
                }
                if ckpt_stride > 0 {
                    cfg = cfg.with_checkpoint_stride(ckpt_stride);
                    if let Some(dir) = &ckpt_dir {
                        cfg = cfg.with_checkpoint_dir(dir.clone());
                    }
                }
                if let Some(d) = detector {
                    cfg = cfg.with_detector(d);
                }
                Some(Chameleon::new(cfg))
            }
            Mode::AppOnly => {
                tp.tracer_mut().set_enabled(false);
                None
            }
            _ => None,
        };
        for step in 0..spec.total_steps() {
            match spec.phase_of(step) {
                None => workload.step(&mut tp, class, step),
                Some(phase) => tp.frame(PHASE_FRAMES[phase % PHASE_FRAMES.len()], |tp| {
                    workload.step(tp, class, step)
                }),
            }
            if let Some(cham) = cham.as_mut() {
                cham.marker(&mut tp);
            }
        }
        match mode_for_ranks {
            Mode::AppOnly => RankOutcome::App,
            Mode::ScalaTrace => RankOutcome::Baseline(scalatrace_finalize(&mut tp, 2)),
            Mode::Acurdion => RankOutcome::Baseline(acurdion_finalize(
                &mut tp,
                &ChameleonConfig::with_k(spec.k).with_algo(algo),
            )),
            Mode::Chameleon => {
                RankOutcome::Chameleon(cham.take().expect("driver built it").finalize(&mut tp))
            }
        }
    };

    let mut world_config = WorldConfig::new(p);
    if overrides.thread_sched {
        world_config = world_config.with_thread_scheduler();
    }
    if overrides.workers > 0 {
        world_config = world_config.with_workers(overrides.workers);
    }
    if overrides.journal || overrides.journal_path.is_some() {
        world_config = world_config.with_recorder();
    }
    // Fault-armed runs go through the faulty world so a planned crash is
    // an outcome, not a failure: crashed ranks report `None` and the run
    // degrades instead of panicking the driver.
    type Pieces<R> = (
        Vec<Option<R>>,
        Vec<usize>,
        Vec<FaultStats>,
        Option<obs::RunJournal>,
        f64,
        Duration,
    );
    let (results, crashed, fault_stats, journal, max_vtime, wall): Pieces<RankOutcome> =
        match overrides.faults.clone() {
            Some(plan) => {
                let report = World::new(world_config.with_faults(plan))
                    .run_faulty(program)
                    .unwrap_or_else(|e| panic!("workload {name} failed: {e}"));
                (
                    report.results,
                    report.crashed,
                    report.fault_stats,
                    report.journal,
                    report.max_vtime,
                    report.wall,
                )
            }
            None => {
                let report = World::new(world_config)
                    .run(program)
                    .unwrap_or_else(|e| panic!("workload {name} failed: {e}"));
                (
                    report.results.into_iter().map(Some).collect(),
                    Vec::new(),
                    report.fault_stats,
                    report.journal,
                    report.max_vtime,
                    report.wall,
                )
            }
        };

    let mut global_trace = None;
    let mut cham_stats = Vec::new();
    let mut baseline = Vec::new();
    for (rank, outcome) in results.iter().enumerate() {
        match outcome {
            None => {} // killed by the plan
            Some(RankOutcome::App) => {}
            Some(RankOutcome::Baseline(b)) => {
                if rank == 0 {
                    global_trace = b.global_trace.clone();
                }
                baseline.push(BaselineSummary::from(b));
            }
            Some(RankOutcome::Chameleon(f)) => {
                // Whichever survivor roots the online trace surfaces it —
                // rank 0 normally, the promoted deputy after a root crash.
                if let Some(trace) = &f.online_trace {
                    global_trace = Some(trace.clone());
                }
                cham_stats.push(f.stats.clone());
            }
        }
    }

    if let (Some(path), Some(journal)) = (&overrides.journal_path, &journal) {
        if let Err(e) = std::fs::write(path, journal.to_jsonl()) {
            eprintln!("journal_path {}: write failed: {e}", path.display());
        }
    }

    RunReport {
        workload: name,
        p,
        app_vtime: max_vtime,
        wall,
        global_trace,
        cham_stats,
        baseline,
        journal,
        crashed,
        fault_stats,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bt::Bt;
    use crate::emf::Emf;
    use crate::lu::Lu;

    fn scaled<W: Workload>(w: W, s: usize) -> ScaledWorkload<W> {
        ScaledWorkload::new(w, s)
    }

    #[test]
    fn bt_chameleon_table2_states() {
        // BT scaled 5x: 50 steps, freq 5 -> 10 markers, same state shape
        // as Table II (1 C / 8 L / 1 AT).
        let rep = run(
            Arc::new(scaled(Bt, 5)),
            Class::A,
            4,
            Mode::Chameleon,
            Overrides::default(),
        );
        let s = &rep.cham_stats[0];
        assert_eq!(s.marker_calls, 10);
        assert_eq!(s.states.c, 1);
        assert_eq!(s.states.l, 8);
        assert_eq!(s.states.at, 1);
        assert!(rep.global_trace.is_some());
    }

    #[test]
    fn lu_chameleon_table2_states() {
        // LU scaled 5x: 52+4+4 steps, freq 4 -> 15 markers, 1 C / 11 L /
        // 3 AT — exactly Table II's LU row shape (class D, the paper's
        // configuration; smaller classes run fewer timesteps).
        let rep = run(
            Arc::new(scaled(Lu::strong(), 5)),
            Class::D,
            4,
            Mode::Chameleon,
            Overrides::default(),
        );
        let s = &rep.cham_stats[0];
        assert_eq!(s.marker_calls, 15);
        assert_eq!(s.states.c, 1, "exactly one clustering");
        assert_eq!(s.states.l, 11);
        assert_eq!(s.states.at, 3, "first + two phase changes");
    }

    #[test]
    fn emf_chameleon_table2_states() {
        let rep = run(
            Arc::new(Emf),
            Class::A,
            5, // rounds(5) = 9000, freq 1000 -> 9 markers
            Mode::Chameleon,
            Overrides::default(),
        );
        let s = &rep.cham_stats[0];
        assert_eq!(s.marker_calls, 9);
        assert_eq!(s.states.c, 1);
        assert_eq!(s.states.l, 6);
        assert_eq!(s.states.at, 2);
    }

    #[test]
    fn app_only_no_overhead_artifacts() {
        let rep = run(
            Arc::new(scaled(Bt, 25)),
            Class::A,
            4,
            Mode::AppOnly,
            Overrides::default(),
        );
        assert!(rep.global_trace.is_none());
        assert!(rep.cham_stats.is_empty());
        assert!(rep.baseline.is_empty());
        assert_eq!(rep.total_overhead(), Duration::ZERO);
        assert!(rep.app_vtime > 0.0);
    }

    #[test]
    fn scalatrace_vs_chameleon_same_app_vtime() {
        // Virtual time is tracing-independent: the tool runs in wall
        // time, not virtual time.
        let a = run(
            Arc::new(scaled(Bt, 25)),
            Class::A,
            4,
            Mode::AppOnly,
            Overrides::default(),
        );
        let b = run(
            Arc::new(scaled(Bt, 25)),
            Class::A,
            4,
            Mode::ScalaTrace,
            Overrides::default(),
        );
        let c = run(
            Arc::new(scaled(Bt, 25)),
            Class::A,
            4,
            Mode::Chameleon,
            Overrides::default(),
        );
        assert!((a.app_vtime - b.app_vtime).abs() < 1e-9);
        assert!((a.app_vtime - c.app_vtime).abs() < 1e-9);
    }

    #[test]
    fn freq_override_applies() {
        let rep = run(
            Arc::new(scaled(Bt, 25)), // 10 steps
            Class::A,
            2,
            Mode::Chameleon,
            Overrides {
                call_frequency: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(rep.cham_stats[0].marker_calls, 5);
        assert_eq!(rep.spec.call_frequency, 2);
    }

    #[test]
    fn journal_gathers_only_when_requested() {
        let rep = run(
            Arc::new(scaled(Bt, 25)),
            Class::A,
            4,
            Mode::Chameleon,
            Overrides::default(),
        );
        assert!(rep.journal.is_none(), "recorder is opt-in");

        let rep = run(
            Arc::new(scaled(Bt, 25)),
            Class::A,
            4,
            Mode::Chameleon,
            Overrides {
                journal: true,
                ..Default::default()
            },
        );
        let j = rep.journal.expect("requested journal must be gathered");
        assert!(!j.armed);
        // Every rank logged its markers, signatures, and state
        // transitions; the slice counts agree with the stats.
        let markers_per_rank = rep.cham_stats[0].marker_invocations;
        assert_eq!(j.count("marker"), markers_per_rank * 4);
        assert!(j.count("signature") > 0);
        assert!(j.count("state") > 0);
        assert_eq!(j.count("fault"), 0, "fault-free run logs no faults");
        // The metrics plane snapshots at every marker plus finalize, on
        // the reduction root only.
        assert_eq!(j.count("snapshot"), markers_per_rank + 1);
        assert!(j
            .rank_log(0)
            .is_some_and(|l| l.counters().get("snapshot").copied() == Some(markers_per_rank + 1)));
    }

    #[test]
    fn journal_path_writes_canonical_jsonl() {
        let path = std::env::temp_dir().join(format!(
            "cham_journal_path_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let rep = run(
            Arc::new(scaled(Bt, 25)),
            Class::A,
            4,
            Mode::Chameleon,
            Overrides {
                journal_path: Some(path.clone()),
                ..Default::default()
            },
        );
        let journal = rep.journal.expect("journal_path implies the recorder");
        let text = std::fs::read_to_string(&path).expect("journal file written");
        assert_eq!(text, journal.to_jsonl(), "file holds the canonical form");
        let parsed = obs::RunJournal::from_jsonl(&text).expect("canonical form parses");
        assert_eq!(parsed, journal);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fault_armed_lossy_run_completes_and_counts() {
        // A crash-free lossy link: the run must complete with an online
        // trace, no crashed ranks, and the injected-fault counters (and
        // their byte-reproducibility) surfaced on the report.
        let armed = || {
            run(
                Arc::new(scaled(Bt, 25)),
                Class::A,
                4,
                Mode::Chameleon,
                Overrides {
                    journal: true,
                    faults: Some(
                        mpisim::FaultPlan::new(11)
                            .corrupt_per_mille(200)
                            .duplicate_per_mille(50),
                    ),
                    retry_budget: Some(2),
                    ..Default::default()
                },
            )
        };
        let rep = armed();
        assert!(rep.crashed.is_empty(), "no crash was planned");
        assert!(rep.global_trace.is_some());
        assert_eq!(rep.cham_stats.len(), 4);
        assert_eq!(rep.fault_stats.len(), 4);
        let journal = rep.journal.as_ref().expect("recorder armed");
        assert!(journal.armed, "fault-armed runs arm the recorder");
        let again = armed();
        assert_eq!(
            journal.to_jsonl(),
            again.journal.unwrap().to_jsonl(),
            "same-plan fault-armed runs are byte-identical"
        );
        assert_eq!(rep.fault_stats, again.fault_stats);
    }

    #[test]
    fn baseline_modes_produce_traces_and_times() {
        for mode in [Mode::ScalaTrace, Mode::Acurdion] {
            let rep = run(
                Arc::new(scaled(Lu::strong(), 20)),
                Class::A,
                4,
                mode,
                Overrides::default(),
            );
            assert!(rep.global_trace.is_some());
            assert_eq!(rep.baseline.len(), 4);
            assert!(rep.intercomp_overhead() > Duration::ZERO);
        }
    }
}
