//! NPB CG skeleton: conjugate gradient with sparse matrix-vector
//! products.
//!
//! CG's irregular computation (SpMV over a random sparse matrix in CSR
//! format) "does not affect communication and, hence, does not impact
//! clustering" (paper §V-A): the communication is a regular transpose
//! exchange over the process grid plus dot-product reductions. Diagonal
//! ranks (self-partnered) and off-diagonal ranks give **2 Call-Path
//! groups**.

use scalatrace::TracedProc;

use crate::grid::Grid2D;
use crate::{scale, Class, RunSpec, Workload};

const TAG_TRANSPOSE: u32 = 60;

/// The CG skeleton.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cg;

impl Workload for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn spec(&self, _class: Class, _p: usize) -> RunSpec {
        // NPB CG runs 75 outer iterations for class D.
        RunSpec {
            main_steps: 75,
            phase_steps: vec![],
            call_frequency: 5,
            k: 2,
        }
    }

    fn step(&self, tp: &mut TracedProc, class: Class, _step: usize) {
        let me = tp.rank();
        let p = tp.size();
        let grid = Grid2D::new(p);
        let partner = grid.transpose_partner(me);
        let bytes = scale::face_bytes(class, p, false);
        let dt = scale::compute_dt(class, p, false);
        tp.frame("cg_iter", |tp| {
            // SpMV: irregular compute, regular communication.
            tp.compute(dt * 0.8);
            if partner != me {
                let payload = vec![0u8; bytes];
                tp.sendrecv(
                    "transpose_exchange",
                    partner,
                    TAG_TRANSPOSE,
                    &payload,
                    partner,
                    TAG_TRANSPOSE,
                );
            } else {
                // Diagonal ranks transpose locally.
                tp.compute(dt * 0.05);
            }
            tp.allreduce_sum("dot_rho", 1);
            tp.compute(dt * 0.15);
            tp.allreduce_sum("dot_alpha", 1);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{World, WorldConfig};
    use std::collections::HashSet;

    #[test]
    fn two_callpath_groups_on_square_grid() {
        let report = World::new(WorldConfig::for_tests(16))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Cg.step(&mut tp, Class::A, 0);
                tp.tracer_mut().rotate_interval().call_path
            })
            .unwrap();
        let distinct: HashSet<_> = report.results.iter().collect();
        assert_eq!(distinct.len(), 2, "diagonal vs off-diagonal");
    }

    #[test]
    fn transpose_exchange_no_deadlock() {
        for p in [1usize, 4, 9, 16] {
            World::new(WorldConfig::for_tests(p))
                .run(|proc| {
                    let mut tp = TracedProc::new(proc);
                    for step in 0..3 {
                        Cg.step(&mut tp, Class::A, step);
                    }
                })
                .unwrap_or_else(|e| panic!("CG deadlocked at p={p}: {e}"));
        }
    }

    #[test]
    fn spec_sane() {
        let spec = Cg.spec(Class::D, 256);
        assert_eq!(spec.expected_marker_calls(), 15);
        assert_eq!(spec.k, 2);
    }
}
