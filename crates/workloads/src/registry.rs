//! Named workload constructors shared by the harness binaries and the
//! scenario-matrix runner ([`crate::matrix`]): one place maps the names
//! plans and CLI flags use onto skeleton constructors.

use std::sync::Arc;

use crate::degraded::{DegradedGrid, DegradedRing};
use crate::driver::ScaledWorkload;
use crate::{bt::Bt, cg::Cg, emf::Emf, lu::Lu, pop::Pop, sp::Sp, sweep3d::Sweep3d, Workload};

/// The strong-scaling benchmark set of Figures 4 and 5.
pub const STRONG_SET: [&str; 5] = ["BT", "SP", "LU", "POP", "EMF"];

/// The weak-scaling set of Figures 6 and 7.
pub const WEAK_SET: [&str; 2] = ["LUW", "S3DW"];

/// Everything Table II covers.
pub const TABLE2_SET: [&str; 7] = ["BT", "LU", "SP", "POP", "S3D", "LUW", "EMF"];

/// Construct a workload by name, scaled by `scale` (1 = paper-faithful),
/// or `None` for an unknown name.
pub fn try_workload(name: &str, scale: usize) -> Option<Arc<dyn Workload>> {
    Some(match name {
        "BT" => Arc::new(ScaledWorkload::new(Bt, scale)),
        "SP" => Arc::new(ScaledWorkload::new(Sp, scale)),
        "LU" => Arc::new(ScaledWorkload::new(Lu::strong(), scale)),
        "LUW" => Arc::new(ScaledWorkload::new(Lu::weak(), scale)),
        "POP" => Arc::new(ScaledWorkload::new(Pop, scale)),
        "S3D" => Arc::new(ScaledWorkload::new(Sweep3d::strong(), scale)),
        "S3DW" => Arc::new(ScaledWorkload::new(Sweep3d::weak(), scale)),
        "CG" => Arc::new(ScaledWorkload::new(Cg, scale)),
        "EMF" => Arc::new(ScaledWorkload::new(Emf, scale)),
        // Degraded-scenario workloads (call frequency 1, so ScaledWorkload
        // leaves their schedules untouched).
        "DRING" => Arc::new(ScaledWorkload::new(DegradedRing, scale)),
        "DGRID" => Arc::new(ScaledWorkload::new(DegradedGrid, scale)),
        _ => return None,
    })
}

/// Construct a workload by name, scaled by `scale` (1 = paper-faithful).
///
/// Panics on unknown names — harness binaries only use the constants
/// above; plan files are validated with [`try_workload`] before any trial
/// runs.
pub fn workload(name: &str, scale: usize) -> Arc<dyn Workload> {
    try_workload(name, scale).unwrap_or_else(|| panic!("unknown workload {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Class;

    #[test]
    fn all_names_resolve() {
        for name in TABLE2_SET
            .iter()
            .chain(WEAK_SET.iter())
            .chain(["CG"].iter())
        {
            let w = workload(name, 10);
            assert_eq!(&w.name(), name);
            let spec = w.spec(Class::A, 16);
            assert!(spec.total_steps() >= 1);
            assert!(spec.k >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        workload("NOPE", 1);
    }

    #[test]
    fn try_workload_is_total() {
        assert!(try_workload("BT", 1).is_some());
        assert!(try_workload("NOPE", 1).is_none());
    }

    #[test]
    fn scale_one_matches_paper_iterations() {
        assert_eq!(workload("BT", 1).spec(Class::D, 1024).total_steps(), 250);
        assert_eq!(workload("LU", 1).spec(Class::D, 1024).total_steps(), 300);
        assert_eq!(workload("SP", 1).spec(Class::D, 1024).total_steps(), 500);
        assert_eq!(workload("POP", 1).spec(Class::D, 1024).total_steps(), 20);
        assert_eq!(workload("S3D", 1).spec(Class::D, 1024).total_steps(), 10);
        assert_eq!(workload("LUW", 1).spec(Class::D, 1024).total_steps(), 250);
    }
}
