//! NPB LU skeleton: SSOR solver with 2-D wavefront sweeps.
//!
//! LU's lower/upper triangular solves propagate as wavefronts across the
//! 2-D process grid: each rank receives from its north/west neighbors,
//! computes, and forwards to south/east (then the reverse for the upper
//! solve). The 3×3 combinations of row/column boundary positions give the
//! paper's **9 Call-Path groups** (Table I: K = 9 for LU and LUW).
//!
//! Two variants share the skeleton: strong scaling (`Lu::strong()`,
//! Table II's "LU": 300 iterations, frequency 20, two trailing norm
//! phases) and weak scaling (`Lu::weak()`, "LUW": 250 iterations,
//! frequency 25, per-rank problem fixed).

use scalatrace::TracedProc;

use crate::grid::Grid2D;
use crate::{scale, Class, RunSpec, Workload};

const TAG_LOWER_V: u32 = 30; // north->south faces, lower sweep
const TAG_LOWER_H: u32 = 31; // west->east faces, lower sweep
const TAG_UPPER_V: u32 = 32;
const TAG_UPPER_H: u32 = 33;

/// The LU skeleton (strong- or weak-scaling flavour).
#[derive(Debug, Clone, Copy)]
pub struct Lu {
    weak: bool,
}

impl Lu {
    /// Strong-scaling configuration (the paper's "LU").
    pub fn strong() -> Self {
        Lu { weak: false }
    }

    /// Weak-scaling configuration (the paper's "LUW").
    pub fn weak() -> Self {
        Lu { weak: true }
    }

    /// Lower-triangular wavefront: consume from north/west, produce to
    /// south/east.
    fn lower_sweep(tp: &mut TracedProc, grid: Grid2D, bytes: usize, dt: f64) {
        let me = tp.rank();
        let payload = vec![0u8; bytes + scale::count_jitter(me, grid.len())];
        if let Some(n) = grid.north(me) {
            tp.recv("blts_recv_north", n, TAG_LOWER_V, bytes);
        }
        if let Some(w) = grid.west(me) {
            tp.recv("blts_recv_west", w, TAG_LOWER_H, bytes);
        }
        tp.compute(dt);
        if let Some(s) = grid.south(me) {
            tp.send("blts_send_south", s, TAG_LOWER_V, &payload);
        }
        if let Some(e) = grid.east(me) {
            tp.send("blts_send_east", e, TAG_LOWER_H, &payload);
        }
    }

    /// Upper-triangular wavefront: the mirror image.
    fn upper_sweep(tp: &mut TracedProc, grid: Grid2D, bytes: usize, dt: f64) {
        let me = tp.rank();
        let payload = vec![0u8; bytes + scale::count_jitter(me, grid.len())];
        if let Some(s) = grid.south(me) {
            tp.recv("buts_recv_south", s, TAG_UPPER_V, bytes);
        }
        if let Some(e) = grid.east(me) {
            tp.recv("buts_recv_east", e, TAG_UPPER_H, bytes);
        }
        tp.compute(dt);
        if let Some(n) = grid.north(me) {
            tp.send("buts_send_north", n, TAG_UPPER_V, &payload);
        }
        if let Some(w) = grid.west(me) {
            tp.send("buts_send_west", w, TAG_UPPER_H, &payload);
        }
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        if self.weak {
            "LUW"
        } else {
            "LU"
        }
    }

    fn spec(&self, class: Class, _p: usize) -> RunSpec {
        if self.weak {
            // Table II LUW: 250 iterations, freq 25 -> 10 markers,
            // 1 C / 8 L / 1 AT.
            RunSpec {
                main_steps: 250,
                phase_steps: vec![],
                call_frequency: 25,
                k: 9,
            }
        } else {
            // Class D is Table II's LU: 300 iterations, freq 20 -> 15
            // markers, 1 C / 11 L / 3 AT (two trailing norm phases).
            // Smaller classes run fewer timesteps (Figure 11's x-axis
            // couples input class and timestep count).
            let main_steps = match class {
                Class::A => 60,
                Class::B => 110,
                Class::C => 210,
                Class::D => 260,
            };
            RunSpec {
                main_steps,
                phase_steps: vec![20, 20],
                call_frequency: 20,
                k: 9,
            }
        }
    }

    fn step(&self, tp: &mut TracedProc, class: Class, _step: usize) {
        let p = tp.size();
        let grid = Grid2D::new(p);
        let bytes = scale::face_bytes(class, p, self.weak);
        let dt = scale::compute_dt(class, p, self.weak);
        tp.frame("ssor", |tp| {
            tp.frame("blts", |tp| {
                Lu::lower_sweep(tp, grid, bytes, dt / 2.0);
            });
            tp.frame("buts", |tp| {
                Lu::upper_sweep(tp, grid, bytes, dt / 2.0);
            });
            tp.allreduce_sum("rhs_norm", 1);
        });
    }
}

/// The Figure 10 experiment: LU modified so that "for every [period]
/// timesteps, processes call a new `MPI_Barrier`. This indicates a new
/// Call-Path and changes the program phase." Sweeping the period sweeps
/// the number of re-clusterings.
#[derive(Debug, Clone, Copy)]
pub struct LuPhaseChange {
    inner: Lu,
    /// Insert the extra barrier every `period` timesteps.
    pub period: usize,
}

impl LuPhaseChange {
    /// Modified strong-scaling LU with a phase change every `period`
    /// steps.
    pub fn new(period: usize) -> Self {
        assert!(period >= 1);
        LuPhaseChange {
            inner: Lu::strong(),
            period,
        }
    }
}

impl Workload for LuPhaseChange {
    fn name(&self) -> &'static str {
        "LU-phase"
    }

    fn spec(&self, class: Class, p: usize) -> RunSpec {
        // Figure 10 runs 300 markers (one per timestep), no trailing
        // phases — the injected barriers are the phase changes.
        let mut spec = self.inner.spec(class, p);
        spec.main_steps = 300;
        spec.phase_steps = vec![];
        spec.call_frequency = 1;
        spec
    }

    fn step(&self, tp: &mut TracedProc, class: Class, step: usize) {
        self.inner.step(tp, class, step);
        if (step + 1).is_multiple_of(self.period) {
            // The "new MPI_Barrier": a call site the steady state lacks.
            tp.barrier("phase_change_barrier");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{World, WorldConfig};
    use std::collections::HashSet;

    #[test]
    fn specs_match_table2() {
        let lu = Lu::strong().spec(Class::D, 1024);
        assert_eq!(lu.total_steps(), 300);
        assert_eq!(lu.expected_marker_calls(), 15);
        assert_eq!(lu.k, 9);

        let luw = Lu::weak().spec(Class::D, 1024);
        assert_eq!(luw.total_steps(), 250);
        assert_eq!(luw.expected_marker_calls(), 10);
    }

    #[test]
    fn nine_callpath_groups_on_grid() {
        // 4x4 grid: all 9 boundary-position classes exist.
        let report = World::new(WorldConfig::for_tests(16))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Lu::strong().step(&mut tp, Class::A, 0);
                tp.tracer_mut().rotate_interval().call_path
            })
            .unwrap();
        let distinct: HashSet<_> = report.results.iter().collect();
        assert_eq!(distinct.len(), 9);
    }

    #[test]
    fn wavefront_completes_without_deadlock() {
        for p in [1usize, 2, 4, 6, 9, 12] {
            World::new(WorldConfig::for_tests(p))
                .run(|proc| {
                    let mut tp = TracedProc::new(proc);
                    for step in 0..3 {
                        Lu::strong().step(&mut tp, Class::A, step);
                    }
                })
                .unwrap_or_else(|e| panic!("LU deadlocked at p={p}: {e}"));
        }
    }

    #[test]
    fn weak_variant_bytes_constant_with_p() {
        assert_eq!(
            scale::face_bytes(Class::B, 16, true),
            scale::face_bytes(Class::B, 256, true)
        );
        assert!(scale::face_bytes(Class::B, 16, false) > scale::face_bytes(Class::B, 256, false));
    }

    #[test]
    fn phase_change_variant_adds_barrier_periodically() {
        let report = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let w = LuPhaseChange::new(2);
                // Steps 0,1: barrier fires after step 1.
                w.step(&mut tp, Class::A, 0);
                let a = tp.tracer_mut().rotate_interval().call_path;
                w.step(&mut tp, Class::A, 1);
                let b = tp.tracer_mut().rotate_interval().call_path;
                (a, b)
            })
            .unwrap();
        for &(a, b) in &report.results {
            assert_ne!(a, b, "barrier step must change the Call-Path");
        }
    }
}
