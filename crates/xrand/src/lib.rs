//! Deterministic, seedable pseudo-random numbers without external crates.
//!
//! The build must work with no network access, so `rand` is replaced by
//! this small module: [`SplitMix64`] for seed expansion (Steele, Lea &
//! Flood, OOPSLA'14) and [`Xoshiro256`] (xoshiro256**, Blackman & Vigna)
//! as the general-purpose generator. Both are tiny, well-studied, and —
//! crucial for this repo — *stable across platforms and releases*: every
//! randomized test and benchmark derives its inputs from a fixed seed and
//! reproduces bit-identically everywhere.
//!
//! This is not a cryptographic generator and must never be used as one.

/// SplitMix64: a 64-bit mixer with a simple additive state. Used to expand
/// one user seed into the four xoshiro256** state words, and usable on its
/// own where a cheap stateless-ish stream is enough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: 256 bits of state, period 2^256 − 1, passes BigCrush.
/// The workhorse generator for tests, benches, and K-random clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Generator whose state is expanded from `seed` via [`SplitMix64`],
    /// per the reference implementation's seeding recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift with a
    /// rejection step to remove modulo bias. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection sampling over the biased zone only.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.usize_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// `k` distinct indices sampled uniformly from `0..n`, in selection
    /// order (partial Fisher–Yates — the same contract `rand`'s
    /// `seq::index::sample` had where this replaced it). Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range_usize(i, n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First two outputs for seed 0 of the public-domain splitmix64.c
        // reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn xoshiro_deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(43);
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 3, "different seeds must give different streams");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let x = rng.below(10);
            assert!(x < 10);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of bounds");
        }
    }

    #[test]
    fn f64_unit_in_half_open_interval() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.f64_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        for (n, k) in [(10, 3), (10, 10), (100, 1), (5, 0)] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "indices must be distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn range_bounds_inclusive_exclusive() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        let mut saw_lo = false;
        for _ in 0..10_000 {
            let x = rng.range_usize(3, 6);
            assert!((3..6).contains(&x));
            saw_lo |= x == 3;
        }
        assert!(saw_lo, "lower bound must be reachable");
    }
}
