//! Criterion microbench: online intra-node compression throughput.
//!
//! Measures `CompressedTrace::append` on periodic event streams — the hot
//! path every traced MPI call goes through. The paper's viability rests on
//! this being cheap and on the compressed size staying constant as
//! iteration counts grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpisim::Comm;
use scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp};
use sigkit::StackSig;

fn ev(sig: u64) -> EventRecord {
    EventRecord::new(
        MpiOp::send(Endpoint::Relative(1), 0, 1024, Comm::WORLD),
        StackSig(sig),
        0,
        1e-5,
    )
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("intra_compression");
    group.sample_size(20);
    for period in [1usize, 3, 8, 16] {
        // A whole number of cycles, so the tail folds completely.
        let events = 2_000usize / period * period;
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(
            BenchmarkId::new("periodic_append", period),
            &period,
            |b, &period| {
                b.iter(|| {
                    let mut t = CompressedTrace::new();
                    for i in 0..events {
                        t.append(ev((i % period) as u64));
                    }
                    assert!(t.compressed_size() <= period + 2);
                    t
                });
            },
        );
    }
    group.finish();
}

fn bench_irregular(c: &mut Criterion) {
    // Worst case: no repetition at all — every event a distinct site.
    let mut group = c.benchmark_group("intra_compression_irregular");
    group.sample_size(20);
    let events = 512usize;
    group.throughput(Throughput::Elements(events as u64));
    group.bench_function("distinct_sites", |b| {
        b.iter(|| {
            let mut t = CompressedTrace::new();
            for i in 0..events {
                t.append(ev(i as u64));
            }
            t
        });
    });
    group.finish();
}

criterion_group!(benches, bench_append, bench_irregular);
criterion_main!(benches);
