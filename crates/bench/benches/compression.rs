//! Microbench: online intra-node compression throughput.
//!
//! Measures `CompressedTrace::append` on periodic event streams — the hot
//! path every traced MPI call goes through. The paper's viability rests on
//! this being cheap and on the compressed size staying constant as
//! iteration counts grow. Results land in
//! `experiments_out/bench_compression.json`.

use std::path::Path;

use chameleon_bench::harness::Harness;
use mpisim::Comm;
use scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp};
use sigkit::StackSig;

fn ev(sig: u64) -> EventRecord {
    EventRecord::new(
        MpiOp::send(Endpoint::Relative(1), 0, 1024, Comm::WORLD),
        StackSig(sig),
        0,
        1e-5,
    )
}

fn main() {
    let mut h = Harness::new();

    for period in [1usize, 3, 8, 16] {
        // A whole number of cycles, so the tail folds completely.
        let events = 2_000usize / period * period;
        h.bench(
            "intra_compression",
            &format!("periodic_append/{period}"),
            || {
                let mut t = CompressedTrace::new();
                for i in 0..events {
                    t.append(ev((i % period) as u64));
                }
                assert!(t.compressed_size() <= period + 2);
                t
            },
        );
    }

    // Worst case: no repetition at all — every event a distinct site.
    let events = 512usize;
    h.bench("intra_compression_irregular", "distinct_sites", || {
        let mut t = CompressedTrace::new();
        for i in 0..events {
            t.append(ev(i as u64));
        }
        t
    });

    h.print_summary();
    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../experiments_out")
        .join("bench_compression.json");
    h.write_json(&out, &[]).expect("write JSON artifact");
    println!("\nwrote {}", out.display());
}
