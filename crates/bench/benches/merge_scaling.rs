//! Microbench: inter-node merge scaling — fast path vs pre-optimization
//! baseline.
//!
//! The pairwise merge is the O(n²) factor in the paper's complexity
//! analysis (n = compressed trace size); merging across ranks is the
//! O(n² log P) bottleneck Chameleon removes. This bench exposes three
//! axes: n (trace size), structural similarity (identical / near-identical
//! / disjoint), and the number of traces folded — and runs three merge
//! implementations on each:
//!
//! - `pairwise_fast` — `merge_traces`: trim prefilters + Hirschberg
//!   linear-memory alignment (this PR).
//! - `pairwise_baseline` — `merge_traces_baseline`: the pre-PR algorithm
//!   (full n×m table, no prefilters). This is the "before" in the
//!   before/after comparison.
//! - `pairwise_reference` — `merge_traces_reference`: the correctness
//!   oracle (shares the trim prefilters, so it is also fast on SPMD
//!   traces; quadratic only in the untrimmed middle).
//!
//! The axes — merge cases, trace sizes, and fold widths — come from the
//! committed scenario-matrix plan `plans/merge_scaling.plan.json` (cases
//! from its `workloads`, sizes from `classes × merge_base_n`, fold
//! widths from `ranks`), so this bench and `chamtrace matrix run`
//! exercise the same sweep.
//!
//! Results (plus derived speedups) land in
//! `experiments_out/merge_scaling.json`; the run asserts the fast path's
//! ≥2× speedup over the baseline on near-identical (SPMD) traces at
//! n ≥ 512. Regenerate with
//! `cargo bench -p chameleon-bench --bench merge_scaling`.

use std::path::Path;

use chameleon_bench::harness::Harness;
use mpisim::Comm;
use scalatrace::merge::{merge_all, merge_traces, merge_traces_baseline, merge_traces_reference};
use scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp};
use sigkit::StackSig;
use workloads::matrix::MatrixPlan;

/// A trace of `n` distinct sites with signatures starting at `base + 1`.
fn trace_with_sites(rank: usize, n: usize, base: u64) -> CompressedTrace {
    let mut t = CompressedTrace::new();
    for s in 0..n {
        t.append(EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 64, Comm::WORLD),
            StackSig(base + s as u64 + 1),
            rank,
            1e-6,
        ));
    }
    t
}

/// SPMD with one rank-private site in the middle: the shared backbone
/// trims away; only the divergence reaches the aligner.
fn near_identical(rank: usize, n: usize) -> CompressedTrace {
    let mut t = CompressedTrace::new();
    for s in 0..n {
        let sig = if s == n / 2 {
            1_000_000 + rank as u64
        } else {
            s as u64 + 1
        };
        t.append(EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 64, Comm::WORLD),
            StackSig(sig),
            rank,
            1e-6,
        ));
    }
    t
}

fn main() {
    let plan = MatrixPlan::load(
        &Path::new(env!("CARGO_MANIFEST_DIR")).join("../../plans/merge_scaling.plan.json"),
    )
    .expect("committed merge-scaling plan parses and validates");
    let cases: Vec<&str> = plan
        .workloads
        .iter()
        .map(|w| match w.as_str() {
            "MERGE_IDENTICAL" => "identical",
            "MERGE_NEAR" => "near_identical",
            "MERGE_DISJOINT" => "disjoint",
            other => panic!("merge-scaling plan lists a non-merge workload {other:?}"),
        })
        .collect();
    let sizes: Vec<usize> = plan
        .classes
        .iter()
        .map(|c| plan.merge_base_n * c.multiplier())
        .collect();

    let mut h = Harness::new();
    for &n in &sizes {
        for &case in &cases {
            let label = format!("{case}/{n}");
            let (a, b) = match case {
                "identical" => (trace_with_sites(0, n, 0), trace_with_sites(1, n, 0)),
                "near_identical" => (near_identical(0, n), near_identical(1, n)),
                "disjoint" => (trace_with_sites(0, n, 0), trace_with_sites(1, n, n as u64)),
                _ => unreachable!(),
            };
            h.bench("pairwise_fast", &label, || merge_traces(&a, &b));
            h.bench("pairwise_baseline", &label, || {
                merge_traces_baseline(&a, &b)
            });
            h.bench("pairwise_reference", &label, || {
                merge_traces_reference(&a, &b)
            });
        }
    }

    // Folding P SPMD traces: the work ScalaTrace does at finalize (P
    // traces) vs Chameleon online (K traces). The P-axis is the paper's
    // whole point.
    for &p in &plan.ranks {
        let traces: Vec<CompressedTrace> = (0..p).map(|r| trace_with_sites(r, 24, 0)).collect();
        h.bench("merge_p_traces", &format!("spmd/{p}"), || {
            merge_all(traces.iter())
        });
    }
    let traces: Vec<CompressedTrace> = (0..9).map(|r| trace_with_sites(r, 24, 0)).collect();
    h.bench("merge_p_traces", "chameleon_k9", || {
        merge_all(traces.iter())
    });

    // Derived speedups: baseline median / fast median per case and size
    // (the before/after this PR claims).
    let mut derived: Vec<(String, f64)> = Vec::new();
    for &case in &cases {
        for &n in &sizes {
            let label = format!("{case}/{n}");
            let fast = h
                .median_ns("pairwise_fast", &label)
                .expect("fast sample recorded");
            let baseline = h
                .median_ns("pairwise_baseline", &label)
                .expect("baseline sample recorded");
            derived.push((format!("speedup_{case}_n{n}"), baseline / fast));
        }
    }

    h.print_summary();
    println!();
    for (key, value) in &derived {
        println!("{key} = {value:.2}x");
    }

    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../experiments_out")
        .join("merge_scaling.json");
    h.write_json(&out, &derived).expect("write JSON artifact");
    println!("\nwrote {}", out.display());

    // Acceptance gate: the SPMD fast path must beat the pre-PR baseline
    // by ≥2× at n ≥ 512 (it is orders of magnitude in practice — the
    // whole alignment trims away and no DP table is built).
    for case in ["identical", "near_identical"] {
        for n in [512usize, 1024] {
            let key = format!("speedup_{case}_n{n}");
            let speedup = derived
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .expect("derived entry");
            assert!(
                speedup >= 2.0,
                "fast path must be ≥2x baseline for {case} at n={n}, got {speedup:.2}x"
            );
        }
    }
    println!("speedup gate passed (≥2x on SPMD-like traces at n ≥ 512)");
}
