//! Microbench: inter-node merge scaling — fast path vs pre-optimization
//! baseline.
//!
//! The pairwise merge is the O(n²) factor in the paper's complexity
//! analysis (n = compressed trace size); merging across ranks is the
//! O(n² log P) bottleneck Chameleon removes. This bench exposes three
//! axes: n (trace size), structural similarity (identical / near-identical
//! / disjoint), and the number of traces folded — and runs three merge
//! implementations on each:
//!
//! - `pairwise_fast` — `merge_traces`: trim prefilters + Hirschberg
//!   linear-memory alignment (this PR).
//! - `pairwise_baseline` — `merge_traces_baseline`: the pre-PR algorithm
//!   (full n×m table, no prefilters). This is the "before" in the
//!   before/after comparison.
//! - `pairwise_reference` — `merge_traces_reference`: the correctness
//!   oracle (shares the trim prefilters, so it is also fast on SPMD
//!   traces; quadratic only in the untrimmed middle).
//!
//! The axes — merge cases, trace sizes, and fold widths — come from the
//! committed scenario-matrix plan `plans/merge_scaling.plan.json` (cases
//! from its `workloads`, sizes from `classes × merge_base_n`, fold
//! widths from `ranks`), so this bench and `chamtrace matrix run`
//! exercise the same sweep.
//!
//! A fourth, world-backed axis runs the *online* path end to end: for
//! every P on the plan's ranks axis (now up to 16384) a simulated world
//! reduces per-rank traces through the radix tree and records the root's
//! tool-clock time — the modeled critical path, which must grow with the
//! tree depth (O(log P)), not with P.
//!
//! Results (plus derived speedups and the online curve) land in
//! `experiments_out/merge_scaling.json`; the run asserts the fast path's
//! ≥2× speedup over the baseline on near-identical (SPMD) traces at
//! n ≥ 512, and the O(log P) growth of the online critical path.
//! Regenerate with `cargo bench -p chameleon-bench --bench merge_scaling`.

use std::path::Path;

use chameleon_bench::harness::Harness;
use mpisim::{Comm, World, WorldConfig};
use scalatrace::merge::{merge_all, merge_traces, merge_traces_baseline, merge_traces_reference};
use scalatrace::reduction::{radix_tree_merge, DEFAULT_RADIX};
use scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp};
use sigkit::StackSig;
use workloads::matrix::MatrixPlan;

/// A trace of `n` distinct sites with signatures starting at `base + 1`.
fn trace_with_sites(rank: usize, n: usize, base: u64) -> CompressedTrace {
    let mut t = CompressedTrace::new();
    for s in 0..n {
        t.append(EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 64, Comm::WORLD),
            StackSig(base + s as u64 + 1),
            rank,
            1e-6,
        ));
    }
    t
}

/// SPMD with one rank-private site in the middle: the shared backbone
/// trims away; only the divergence reaches the aligner.
fn near_identical(rank: usize, n: usize) -> CompressedTrace {
    let mut t = CompressedTrace::new();
    for s in 0..n {
        let sig = if s == n / 2 {
            1_000_000 + rank as u64
        } else {
            s as u64 + 1
        };
        t.append(EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 64, Comm::WORLD),
            StackSig(sig),
            rank,
            1e-6,
        ));
    }
    t
}

fn main() {
    let plan = MatrixPlan::load(
        &Path::new(env!("CARGO_MANIFEST_DIR")).join("../../plans/merge_scaling.plan.json"),
    )
    .expect("committed merge-scaling plan parses and validates");
    let cases: Vec<&str> = plan
        .workloads
        .iter()
        .map(|w| match w.as_str() {
            "MERGE_IDENTICAL" => "identical",
            "MERGE_NEAR" => "near_identical",
            "MERGE_DISJOINT" => "disjoint",
            other => panic!("merge-scaling plan lists a non-merge workload {other:?}"),
        })
        .collect();
    let sizes: Vec<usize> = plan
        .classes
        .iter()
        .map(|c| plan.merge_base_n * c.multiplier())
        .collect();

    let mut h = Harness::new();
    for &n in &sizes {
        for &case in &cases {
            let label = format!("{case}/{n}");
            let (a, b) = match case {
                "identical" => (trace_with_sites(0, n, 0), trace_with_sites(1, n, 0)),
                "near_identical" => (near_identical(0, n), near_identical(1, n)),
                "disjoint" => (trace_with_sites(0, n, 0), trace_with_sites(1, n, n as u64)),
                _ => unreachable!(),
            };
            h.bench("pairwise_fast", &label, || merge_traces(&a, &b));
            h.bench("pairwise_baseline", &label, || {
                merge_traces_baseline(&a, &b)
            });
            h.bench("pairwise_reference", &label, || {
                merge_traces_reference(&a, &b)
            });
        }
    }

    // Folding P SPMD traces: the work ScalaTrace does at finalize (P
    // traces) vs Chameleon online (K traces). The P-axis is the paper's
    // whole point. This *wall-clock* axis is capped: the 16384-wide fold
    // costs ~25 s per sample (ranklist growth makes the offline fold
    // O(P²) even on identical traces — exactly the finalize-time cost the
    // paper gets rid of), which is too slow to repeat batch-style on
    // every push. The cap is printed, not silent; the 16384 point is
    // still measured twice below — once by the world-backed online curve
    // here, and once (single-shot, with its size and digest pinned) by
    // the merge-scaling scenario matrix.
    const OFFLINE_FOLD_WALL_CAP: usize = 4096;
    for &p in plan.ranks.iter().filter(|&&p| p <= OFFLINE_FOLD_WALL_CAP) {
        let traces: Vec<CompressedTrace> = (0..p).map(|r| trace_with_sites(r, 24, 0)).collect();
        h.bench("merge_p_traces", &format!("spmd/{p}"), || {
            merge_all(traces.iter())
        });
    }
    if plan.ranks.iter().any(|&p| p > OFFLINE_FOLD_WALL_CAP) {
        println!(
            "note: offline fold wall-bench capped at P = {OFFLINE_FOLD_WALL_CAP}; \
             larger points are covered by the online curve and the scenario matrix"
        );
    }
    let traces: Vec<CompressedTrace> = (0..9).map(|r| trace_with_sites(r, 24, 0)).collect();
    h.bench("merge_p_traces", "chameleon_k9", || {
        merge_all(traces.iter())
    });

    // World-backed online curve: P rank tasks (event scheduler) reduce
    // their per-rank SPMD traces through the radix tree; the root's
    // tool-clock time is the modeled critical path of the online merge.
    // One deterministic run per P — the metric is virtual time, so wall
    // repetition adds nothing. The plan's ranks axis takes this to
    // P = 16384, where a thread-per-rank engine would be thrashing
    // thousands of pollers; here it is 16384 parked continuations.
    let mut online: Vec<(usize, f64)> = Vec::new();
    for &p in &plan.ranks {
        let report = World::new(WorldConfig::new(p))
            .run(move |proc| {
                let mine = trace_with_sites(proc.rank(), 24, 0);
                let participants: Vec<usize> = (0..proc.size()).collect();
                let out = radix_tree_merge(proc, DEFAULT_RADIX, &participants, &mine);
                if proc.rank() == 0 {
                    let merged = out.merged.expect("root holds the merged trace");
                    assert!(merged.dynamic_size() > 0, "empty online merge at the root");
                }
                assert_eq!(out.degraded, 0, "fault-free reduction must be exact");
                proc.tool_time()
            })
            .expect("online reduction world");
        online.push((p, report.results[0]));
    }

    // Derived speedups: baseline median / fast median per case and size
    // (the before/after this PR claims).
    let mut derived: Vec<(String, f64)> = Vec::new();
    for &(p, tool_s) in &online {
        derived.push((format!("online_root_tool_s_p{p}"), tool_s));
    }
    for &case in &cases {
        for &n in &sizes {
            let label = format!("{case}/{n}");
            let fast = h
                .median_ns("pairwise_fast", &label)
                .expect("fast sample recorded");
            let baseline = h
                .median_ns("pairwise_baseline", &label)
                .expect("baseline sample recorded");
            derived.push((format!("speedup_{case}_n{n}"), baseline / fast));
        }
    }

    h.print_summary();
    println!();
    for (key, value) in &derived {
        println!("{key} = {value:.2}x");
    }

    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../experiments_out")
        .join("merge_scaling.json");
    h.write_json(&out, &derived).expect("write JSON artifact");
    println!("\nwrote {}", out.display());

    // Acceptance gate: the SPMD fast path must beat the pre-PR baseline
    // by ≥2× at n ≥ 512 (it is orders of magnitude in practice — the
    // whole alignment trims away and no DP table is built).
    for case in ["identical", "near_identical"] {
        for n in [512usize, 1024] {
            let key = format!("speedup_{case}_n{n}");
            let speedup = derived
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .expect("derived entry");
            assert!(
                speedup >= 2.0,
                "fast path must be ≥2x baseline for {case} at n={n}, got {speedup:.2}x"
            );
        }
    }
    println!("speedup gate passed (≥2x on SPMD-like traces at n ≥ 512)");

    // Acceptance gate: the online merge's critical path grows with the
    // reduction tree's *depth*, not with P. Between the smallest and
    // largest world the allowed growth is the depth ratio with 8x slack —
    // a linear-in-P regression (the pre-tree behavior) is thousands of
    // times over this line at P = 16384.
    let (p_min, t_min) = online[0];
    let (p_max, t_max) = *online.last().expect("plan has a ranks axis");
    if p_max > p_min {
        let depth_ratio = (p_max as f64).log2() / (p_min as f64).log2().max(1.0);
        assert!(
            t_max <= t_min * depth_ratio * 8.0,
            "online merge critical path is not O(log P): \
             t({p_max}) = {t_max:.6}s vs t({p_min}) = {t_min:.6}s \
             (allowed {:.1}x, got {:.1}x)",
            depth_ratio * 8.0,
            t_max / t_min
        );
        println!(
            "online-merge gate passed (t({p_max}) = {:.2}x t({p_min}), depth ratio {:.1})",
            t_max / t_min,
            depth_ratio
        );
    }
}
