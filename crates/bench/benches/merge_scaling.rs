//! Criterion microbench: inter-node merge scaling.
//!
//! The pairwise merge is the O(n²) factor in the paper's complexity
//! analysis (n = compressed trace size); merging across ranks is the
//! O(n² log P) bottleneck Chameleon removes. These benches expose both
//! axes: n (trace size) and the number of traces folded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::Comm;
use scalatrace::merge::{merge_all, merge_traces};
use scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp};
use sigkit::StackSig;

fn trace_with_sites(rank: usize, sites: usize) -> CompressedTrace {
    let mut t = CompressedTrace::new();
    for s in 0..sites {
        t.append(EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 64, Comm::WORLD),
            StackSig(s as u64 + 1),
            rank,
            1e-6,
        ));
    }
    t
}

fn bench_pairwise_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_pairwise");
    group.sample_size(20);
    for n in [8usize, 32, 128, 512] {
        group.bench_with_input(BenchmarkId::new("identical", n), &n, |b, &n| {
            let a = trace_with_sites(0, n);
            let x = trace_with_sites(1, n);
            b.iter(|| merge_traces(&a, &x));
        });
        group.bench_with_input(BenchmarkId::new("disjoint", n), &n, |b, &n| {
            let a = trace_with_sites(0, n);
            let mut x = CompressedTrace::new();
            for s in 0..n {
                x.append(EventRecord::new(
                    MpiOp::send(Endpoint::Relative(1), 0, 64, Comm::WORLD),
                    StackSig((n + s) as u64 + 1),
                    1,
                    1e-6,
                ));
            }
            b.iter(|| merge_traces(&a, &x));
        });
    }
    group.finish();
}

fn bench_merge_p_traces(c: &mut Criterion) {
    // Folding P SPMD traces: the work ScalaTrace does at finalize (P
    // traces) vs Chameleon online (K traces). The P-axis is the paper's
    // whole point.
    let mut group = c.benchmark_group("merge_p_traces");
    group.sample_size(10);
    for p in [4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("spmd", p), &p, |b, &p| {
            let traces: Vec<CompressedTrace> =
                (0..p).map(|r| trace_with_sites(r, 24)).collect();
            b.iter(|| merge_all(traces.iter()));
        });
    }
    // The Chameleon side: always K traces regardless of P.
    group.bench_function("chameleon_k9", |b| {
        let traces: Vec<CompressedTrace> = (0..9).map(|r| trace_with_sites(r, 24)).collect();
        b.iter(|| merge_all(traces.iter()));
    });
    group.finish();
}

criterion_group!(benches, bench_pairwise_by_n, bench_merge_p_traces);
criterion_main!(benches);
