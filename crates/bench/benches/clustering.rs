//! Microbench: clustering algorithms and Top-K selection.
//!
//! Chameleon clusters at most 2K+1 items per tree node; these benches
//! verify the constant is small and compare the three interchangeable
//! algorithms (K-farthest, K-medoids, K-random). Results land in
//! `experiments_out/bench_clustering.json`.

use std::path::Path;

use chameleon_bench::harness::Harness;
use clusterkit::{find_top_k, ClusterAlgorithm, ClusterEntry, KFarthest, KMedoids, KRandom};
use sigkit::{CallPathSig, SignatureTriple};

fn entries(n: usize) -> Vec<ClusterEntry> {
    (0..n)
        .map(|r| {
            ClusterEntry::singleton(
                r,
                &SignatureTriple {
                    call_path: CallPathSig(1),
                    src: (r as u64).wrapping_mul(0x9e3779b97f4a7c15) % 10_000,
                    dest: (r as u64).wrapping_mul(0xbf58476d1ce4e5b9) % 10_000,
                },
            )
        })
        .collect()
}

fn main() {
    let mut h = Harness::new();

    let n = 64usize;
    let coords: Vec<f64> = (0..n).map(|i| (i as f64 * 37.0) % 1000.0).collect();
    let dist = move |a: usize, b: usize| (coords[a] - coords[b]).abs();
    for k in [3usize, 9] {
        h.bench("cluster_select", &format!("k_farthest/{k}"), || {
            KFarthest.select(n, k, &dist)
        });
        h.bench("cluster_select", &format!("k_medoids/{k}"), || {
            KMedoids::default().select(n, k, &dist)
        });
        h.bench("cluster_select", &format!("k_random/{k}"), || {
            KRandom::default().select(n, k, &dist)
        });
    }

    // The per-tree-node working set: (radix + 1) * K entries.
    for n in [7usize, 19, 64] {
        let base = entries(n);
        h.bench("find_top_k", &format!("reduce_to_9/{n}"), || {
            find_top_k(base.clone(), 9, &KFarthest)
        });
    }

    h.print_summary();
    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../experiments_out")
        .join("bench_clustering.json");
    h.write_json(&out, &[]).expect("write JSON artifact");
    println!("\nwrote {}", out.display());
}
