//! Criterion microbench: clustering algorithms and Top-K selection.
//!
//! Chameleon clusters at most 2K+1 items per tree node; these benches
//! verify the constant is small and compare the three interchangeable
//! algorithms (K-farthest, K-medoids, K-random).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use clusterkit::{find_top_k, ClusterAlgorithm, ClusterEntry, KFarthest, KMedoids, KRandom};
use sigkit::{CallPathSig, SignatureTriple};

fn entries(n: usize) -> Vec<ClusterEntry> {
    (0..n)
        .map(|r| {
            ClusterEntry::singleton(
                r,
                &SignatureTriple {
                    call_path: CallPathSig(1),
                    src: (r as u64).wrapping_mul(0x9e3779b97f4a7c15) % 10_000,
                    dest: (r as u64).wrapping_mul(0xbf58476d1ce4e5b9) % 10_000,
                },
            )
        })
        .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_select");
    let n = 64usize;
    let coords: Vec<f64> = (0..n).map(|i| (i as f64 * 37.0) % 1000.0).collect();
    let dist = move |a: usize, b: usize| (coords[a] - coords[b]).abs();
    for k in [3usize, 9] {
        group.bench_with_input(BenchmarkId::new("k_farthest", k), &k, |b, &k| {
            b.iter(|| KFarthest.select(n, k, &dist));
        });
        group.bench_with_input(BenchmarkId::new("k_medoids", k), &k, |b, &k| {
            b.iter(|| KMedoids::default().select(n, k, &dist));
        });
        group.bench_with_input(BenchmarkId::new("k_random", k), &k, |b, &k| {
            b.iter(|| KRandom::default().select(n, k, &dist));
        });
    }
    group.finish();
}

fn bench_find_top_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_top_k");
    // The per-tree-node working set: (radix + 1) * K entries.
    for n in [7usize, 19, 64] {
        group.bench_with_input(BenchmarkId::new("reduce_to_9", n), &n, |b, &n| {
            let base = entries(n);
            b.iter(|| find_top_k(base.clone(), 9, &KFarthest));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_find_top_k);
criterion_main!(benches);
