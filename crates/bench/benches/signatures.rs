//! Criterion microbench: signature computation.
//!
//! Stack-signature derivation and Call-Path accumulation run on every
//! traced MPI event; the Chameleon marker additionally finishes the
//! interval signature. All must be O(1) per event and nanosecond-scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sigkit::stack::{frame_addr, CallStack};
use sigkit::{CallPathAccumulator, ParamEstimator, StackSig};

fn bench_stack_sigs(c: &mut Criterion) {
    let mut group = c.benchmark_group("signatures");
    group.throughput(Throughput::Elements(1));
    group.bench_function("signature_with", |b| {
        let mut cs = CallStack::new();
        cs.push(frame_addr("main"));
        cs.push(frame_addr("timestep"));
        cs.push(frame_addr("solver"));
        let site = frame_addr("halo_send");
        b.iter(|| cs.signature_with(site));
    });
    group.bench_function("push_pop", |b| {
        let mut cs = CallStack::new();
        cs.push(frame_addr("main"));
        let f = frame_addr("loop_body");
        b.iter(|| {
            cs.push(f);
            let s = cs.signature();
            cs.pop();
            s
        });
    });
    group.finish();
}

fn bench_callpath_accumulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("callpath");
    let events = 10_000u64;
    group.throughput(Throughput::Elements(events));
    group.bench_function("record_finish", |b| {
        b.iter(|| {
            let mut acc = CallPathAccumulator::new();
            for i in 0..events {
                acc.record(StackSig(i % 7 + 1));
            }
            acc.finish()
        });
    });
    group.finish();
}

fn bench_param_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("param_estimator");
    let samples = 10_000u64;
    group.throughput(Throughput::Elements(samples));
    group.bench_function("running_average", |b| {
        b.iter(|| {
            let mut est = ParamEstimator::new();
            for i in 0..samples {
                est.add(i.wrapping_mul(0x9e3779b97f4a7c15));
            }
            est.estimate()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stack_sigs,
    bench_callpath_accumulation,
    bench_param_estimator
);
criterion_main!(benches);
