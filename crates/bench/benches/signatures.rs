//! Microbench: signature computation.
//!
//! Stack-signature derivation and Call-Path accumulation run on every
//! traced MPI event; the Chameleon marker additionally finishes the
//! interval signature. All must be O(1) per event and nanosecond-scale.
//! Results land in `experiments_out/bench_signatures.json`.

use std::path::Path;

use chameleon_bench::harness::Harness;
use sigkit::stack::{frame_addr, CallStack};
use sigkit::{CallPathAccumulator, ParamEstimator, StackSig};

fn main() {
    let mut h = Harness::new();

    {
        let mut cs = CallStack::new();
        cs.push(frame_addr("main"));
        cs.push(frame_addr("timestep"));
        cs.push(frame_addr("solver"));
        let site = frame_addr("halo_send");
        h.bench("signatures", "signature_with", || cs.signature_with(site));
    }

    {
        let mut cs = CallStack::new();
        cs.push(frame_addr("main"));
        let f = frame_addr("loop_body");
        h.bench("signatures", "push_pop", move || {
            cs.push(f);
            let s = cs.signature();
            cs.pop();
            s
        });
    }

    let events = 10_000u64;
    h.bench("callpath", "record_finish_10k", || {
        let mut acc = CallPathAccumulator::new();
        for i in 0..events {
            acc.record(StackSig(i % 7 + 1));
        }
        acc.finish()
    });

    let samples = 10_000u64;
    h.bench("param_estimator", "running_average_10k", || {
        let mut est = ParamEstimator::new();
        for i in 0..samples {
            est.add(i.wrapping_mul(0x9e3779b97f4a7c15));
        }
        est.estimate()
    });

    h.print_summary();
    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../experiments_out")
        .join("bench_signatures.json");
    h.write_json(&out, &[]).expect("write JSON artifact");
    println!("\nwrote {}", out.display());
}
