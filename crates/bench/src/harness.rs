//! Minimal internal micro-benchmark harness.
//!
//! The hermetic build has no criterion, so `benches/*.rs` are plain
//! `harness = false` binaries driving this module. The API is shaped
//! loosely after criterion's so the bench files read familiar: a
//! [`Harness`], groups and labels, closures timed over auto-sized
//! batches. Results print as a table and serialize to a JSON artifact
//! (hand-rolled writer — no serde either).
//!
//! Methodology: warm up by doubling the batch size until one batch takes
//! at least [`MIN_BATCH`], then time [`BATCHES`] batches and report
//! per-iteration min / median / mean. Median is what comparisons should
//! use; min bounds the noise floor.

use std::fmt::Write as _;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// Target minimum duration of one timed batch.
const MIN_BATCH: std::time::Duration = std::time::Duration::from_millis(5);
/// Timed batches per benchmark.
const BATCHES: usize = 12;
/// Cap on iterations per batch (very fast bodies).
const MAX_ITERS: u64 = 1 << 22;

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark group (e.g. "merge_pairwise").
    pub group: String,
    /// Case label within the group (e.g. "identical/512").
    pub label: String,
    /// Iterations per timed batch.
    pub iters: u64,
    /// Mean nanoseconds per iteration across batches.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration across batches.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration across batches.
    pub min_ns: f64,
}

/// Collects benchmark samples and renders them.
#[derive(Debug, Default)]
pub struct Harness {
    samples: Vec<Sample>,
}

impl Harness {
    /// Empty harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f`, recording the measurement under `group`/`label`. Returns
    /// the recorded sample (by reference into the harness).
    pub fn bench<T>(&mut self, group: &str, label: &str, mut f: impl FnMut() -> T) -> &Sample {
        let time_batch = |f: &mut dyn FnMut() -> T, iters: u64| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed()
        };
        // Warmup: find a batch size that runs long enough to time well.
        let mut iters = 1u64;
        loop {
            let took = time_batch(&mut f, iters);
            if took >= MIN_BATCH || iters >= MAX_ITERS {
                break;
            }
            // Jump toward the target, at least doubling.
            let target = MIN_BATCH.as_secs_f64();
            let per_iter = took.as_secs_f64() / iters as f64;
            let needed = if per_iter > 0.0 {
                (target / per_iter).ceil() as u64
            } else {
                iters * 2
            };
            iters = needed.max(iters * 2).min(MAX_ITERS);
        }
        let mut per_iter_ns: Vec<f64> = (0..BATCHES)
            .map(|_| time_batch(&mut f, iters).as_secs_f64() * 1e9 / iters as f64)
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min_ns = per_iter_ns[0];
        let median_ns = per_iter_ns[BATCHES / 2];
        let mean_ns = per_iter_ns.iter().sum::<f64>() / BATCHES as f64;
        self.samples.push(Sample {
            group: group.to_string(),
            label: label.to_string(),
            iters,
            mean_ns,
            median_ns,
            min_ns,
        });
        self.samples.last().expect("just pushed")
    }

    /// All samples recorded so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Median ns/iter of a recorded benchmark, if present.
    pub fn median_ns(&self, group: &str, label: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.group == group && s.label == label)
            .map(|s| s.median_ns)
    }

    /// Print a summary table to stdout.
    pub fn print_summary(&self) {
        println!(
            "{:<24} {:<28} {:>12} {:>12} {:>12}",
            "group", "label", "median", "mean", "min"
        );
        for s in &self.samples {
            println!(
                "{:<24} {:<28} {:>12} {:>12} {:>12}",
                s.group,
                s.label,
                fmt_ns(s.median_ns),
                fmt_ns(s.mean_ns),
                fmt_ns(s.min_ns)
            );
        }
    }

    /// Render all samples (plus caller-provided derived metrics) as a JSON
    /// document.
    pub fn to_json(&self, derived: &[(String, f64)]) -> String {
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (idx, s) in self.samples.iter().enumerate() {
            let comma = if idx + 1 < self.samples.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"group\": {}, \"label\": {}, \"iters_per_batch\": {}, \
                 \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}}}{}",
                json_str(&s.group),
                json_str(&s.label),
                s.iters,
                s.median_ns,
                s.mean_ns,
                s.min_ns,
                comma
            );
        }
        out.push_str("  ],\n  \"derived\": {");
        for (idx, (key, value)) in derived.iter().enumerate() {
            let comma = if idx + 1 < derived.len() { "," } else { "" };
            let _ = write!(out, "\n    {}: {:.4}{}", json_str(key), value, comma);
        }
        if !derived.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Write the JSON document to `path`, creating parent directories.
    pub fn write_json(&self, path: &Path, derived: &[(String, f64)]) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json(derived))
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_sane_sample() {
        let mut h = Harness::new();
        let s = h.bench("t", "spin", || {
            let mut x = 0u64;
            for i in 0..100u64 {
                x = x.wrapping_add(i * i);
            }
            x
        });
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.iters >= 1);
        assert_eq!(h.samples().len(), 1);
        assert!(h.median_ns("t", "spin").is_some());
        assert!(h.median_ns("t", "missing").is_none());
    }

    #[test]
    fn json_escapes_and_structure() {
        let mut h = Harness::new();
        h.bench("g", "a\"b", || 1u64);
        let j = h.to_json(&[("speedup".to_string(), 2.5)]);
        assert!(j.contains("\\\"")); // escaped quote in label
        assert!(j.contains("\"speedup\": 2.5000"));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }
}
