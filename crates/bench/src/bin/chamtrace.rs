//! `chamtrace` — inspect, validate, and replay Chameleon/ScalaTrace trace
//! files from the command line.
//!
//! ```text
//! chamtrace info   <trace-file>             # summary statistics
//! chamtrace dump   <trace-file>             # pretty event listing
//! chamtrace check  <trace-file>             # parse + invariant checks
//! chamtrace replay <trace-file> <ranks>     # replay, print virtual time
//!
//! chamtrace journal summarize <journal>     # header + per-label counts
//! chamtrace journal timeline  <journal> <r> # one rank's events in order
//! chamtrace journal spans     <journal>     # merge levels + critical path
//! chamtrace journal metrics   <journal>     # metrics-plane snapshots
//! chamtrace journal anomalies <journal>     # detector verdicts per rank
//! chamtrace journal diff      <a> <b>       # exit 1 on divergence,
//!                                           # 2 if either file is bad
//!
//! chamtrace ckpt info   <blob>              # decode a CKPT1 checkpoint
//! chamtrace ckpt latest <dir>               # newest ckpt-*.bin in a dir
//! chamtrace chaos supervise <ranks> <steps> <seed> <marker> <dir>
//!                                           # root-crash + restart demo
//!
//! chamtrace matrix expand <plan>            # list the trial cross product
//! chamtrace matrix run <plan> [--jobs N] [--out DIR]
//!                                           # run a scenario matrix
//! chamtrace matrix diff <baseline.json> <results.json>
//!                                           # regression gate (exit 1 on
//!                                           # first divergence)
//! ```
//!
//! Journal files are the flight recorder's canonical JSONL
//! (`chameleon-obs-v1`, see OBSERVABILITY.md); malformed input fails
//! with the offending line number and exit code 2 — for `journal diff`
//! that applies to *both* operands: a parse failure in either file is
//! exit 2, never the divergence code 1. Checkpoint blobs are the
//! versioned `CKPT1` binary format (see FAULTS.md "Recovery"); corrupt
//! or truncated blobs also exit 2.
//!
//! Matrix plans are declarative JSON scenario matrices (see
//! EXPERIMENTS.md "Running a matrix"); `matrix run` exits 1 when any
//! trial fails its invariants, `matrix diff` exits 1 naming the first
//! diverging trial + metric, and both exit 2 on malformed plans/tables.

use chameleon::Checkpoint;
use mpisim::CostModel;
use obs::{query, RunJournal};
use scalatrace::{format, CompressedTrace, RankSet};
use workloads::chaos::{
    latest_checkpoint, marker_entry_ops, root_crash_plan, run_chaos_supervised,
};
use workloads::matrix::{
    diff_results, diff_timings, journal_drilldown, run_plan, timings_from_json, MatrixPlan,
    MatrixResults,
};

fn load(path: &str) -> CompressedTrace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    format::from_text(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid trace: {e}");
        std::process::exit(1);
    })
}

fn info(path: &str) {
    let t = load(path);
    let mut ranks = RankSet::empty();
    let mut ops = std::collections::BTreeMap::<&str, u64>::new();
    let mut total_time = 0.0;
    t.visit_events(&mut |e| {
        ranks = ranks.union(&e.ranks);
        *ops.entry(e.op.kind.mnemonic()).or_default() += 1;
        total_time += e.pre_time.total();
    });
    println!("trace:            {path}");
    println!("compressed nodes: {}", t.compressed_size());
    println!("dynamic events:   {}", t.dynamic_size());
    println!("ranks covered:    {} ({})", ranks.len(), ranks);
    println!("recorded compute: {total_time:.6}s");
    println!("events by op:");
    for (op, n) in ops {
        println!("  {op:<10} {n}");
    }
}

fn dump(path: &str) {
    let t = load(path);
    print!("{}", format::to_text(&t));
}

fn check(path: &str) {
    let t = load(path);
    let mut problems = 0u32;
    t.visit_events(&mut |e| {
        if e.ranks.is_empty() {
            eprintln!("event with empty ranklist: {:?}", e.op.kind);
            problems += 1;
        }
        if e.pre_time.count() == 0 {
            eprintln!("event with no time samples: {:?}", e.op.kind);
            problems += 1;
        }
    });
    if problems == 0 {
        println!(
            "ok: {} nodes, {} dynamic events",
            t.compressed_size(),
            t.dynamic_size()
        );
    } else {
        eprintln!("{problems} problem(s) found");
        std::process::exit(1);
    }
}

fn replay_cmd(path: &str, ranks: usize) {
    let t = load(path);
    match scalareplay::replay(&t, ranks, CostModel::default()) {
        Ok(rep) => {
            println!("replay virtual time: {:.6}s", rep.replay_vtime);
            println!("events executed:     {}", rep.events_executed);
            println!("events dropped:      {}", rep.dropped_events);
            println!("replay wall time:    {:?}", rep.wall);
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        }
    }
}

fn load_journal(path: &str) -> RunJournal {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    RunJournal::from_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}

fn journal_summarize(path: &str) {
    print!("{}", load_journal(path).summary());
}

fn journal_timeline(path: &str, rank: usize) {
    match query::timeline(&load_journal(path), rank) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn journal_spans(path: &str) {
    print!("{}", query::span_report(&load_journal(path)));
}

fn journal_metrics(path: &str) {
    print!("{}", query::metrics_report(&load_journal(path)));
}

fn journal_anomalies(path: &str) {
    print!("{}", query::anomaly_report(&load_journal(path)));
}

fn journal_diff(path_a: &str, path_b: &str) {
    let a = load_journal(path_a);
    let b = load_journal(path_b);
    match query::diff(&a, &b) {
        None => println!("identical: {path_a} and {path_b}"),
        Some(divergence) => {
            println!("divergence: {divergence}");
            std::process::exit(1);
        }
    }
}

fn load_ckpt(path: &str) -> Checkpoint {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Checkpoint::decode(&bytes).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}

fn ckpt_info(path: &str) {
    let c = load_ckpt(path);
    println!("checkpoint:      {path}");
    println!("marker:          {}", c.marker);
    println!("marker calls:    {}", c.marker_calls);
    println!("root:            {}", c.root);
    println!("alive:           {} ranks {:?}", c.alive.len(), c.alive);
    println!("journal hwm:     {}", c.journal_hwm);
    println!(
        "graph:           old_call_path={:#x} re_clustering={} lead_flag={}",
        c.old_call_path.0, c.re_clustering, c.lead_flag
    );
    match &c.selection {
        Some(sel) => println!(
            "selection:       k={} leads={:?}",
            sel.effective_k, sel.leads
        ),
        None => println!("selection:       none (pre-clustering)"),
    }
    println!(
        "online trace:    {} nodes, {} dynamic events",
        c.trace.compressed_size(),
        c.trace.dynamic_size()
    );
    println!("metric payload:  {} bytes", c.metrics.len());
}

fn ckpt_latest(dir: &str) {
    match latest_checkpoint(std::path::Path::new(dir)) {
        Some((marker, path)) => println!("marker {marker}: {}", path.display()),
        None => {
            eprintln!("error: no ckpt-*.bin under {dir}");
            std::process::exit(1);
        }
    }
}

/// Demo/debug driver for the tentpole scenario: crash rank 0 at the given
/// marker's entry under the standard lossy link, checkpointing every other
/// marker into `dir`, and let the supervisor restart from the latest blob
/// if the in-place failover cannot complete.
fn chaos_supervise(ranks: usize, steps: usize, seed: u64, marker: usize, dir: &str) {
    if marker >= steps {
        eprintln!("error: marker {marker} out of range (steps={steps})");
        std::process::exit(2);
    }
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    });
    let ops = marker_entry_ops(ranks, steps, root_crash_plan(seed, 0));
    let sup = run_chaos_supervised(
        ranks,
        steps,
        root_crash_plan(seed, ops[marker]),
        2,
        dir,
        true,
    );
    println!("crashed ranks:   {:?}", sup.outcome.crashed);
    println!("restarts:        {}", sup.restarts);
    match sup.resumed_marker {
        Some(m) => println!("resumed from:    marker {m}"),
        None => println!("resumed from:    (in-place failover, no restart)"),
    }
    println!(
        "online trace:    {} nodes, {} dynamic events",
        sup.outcome.online_trace.compressed_size(),
        sup.outcome.online_trace.dynamic_size()
    );
    let promotions: u64 = sup
        .outcome
        .stats
        .iter()
        .flatten()
        .map(|s| s.promotions)
        .max()
        .unwrap_or(0);
    println!("promotions:      {promotions}");
    if let Some(journal) = &sup.outcome.journal {
        println!(
            "journal:         {} events ({} checkpoint, {} promote, {} resume)",
            journal.events().count(),
            journal.count("checkpoint"),
            journal.count("promote"),
            journal.count("resume"),
        );
    }
    if let Some((m, path)) = latest_checkpoint(dir) {
        println!("latest ckpt:     marker {m} at {}", path.display());
    }
}

fn load_plan(path: &str) -> MatrixPlan {
    MatrixPlan::load(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

fn matrix_expand(path: &str) {
    let plan = load_plan(path);
    let trials = plan.expand();
    for t in &trials {
        println!("{}", t.id);
    }
    eprintln!("{} trial(s) in plan {:?}", trials.len(), plan.name);
}

fn matrix_run(path: &str, jobs: usize, out: &str) {
    let plan = load_plan(path);
    let out_root = std::path::Path::new(out);
    let (results, _timings) = run_plan(&plan, out_root, jobs).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let failed: Vec<&str> = results
        .trials
        .iter()
        .filter(|t| !t.ok)
        .map(|t| t.id.as_str())
        .collect();
    println!(
        "plan {:?}: {} trial(s), {} failed; tables under {}",
        plan.name,
        results.trials.len(),
        failed.len(),
        out_root.join(&plan.name).display(),
    );
    for id in &failed {
        eprintln!("FAILED: {id}");
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}

fn load_results(path: &str) -> MatrixResults {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    MatrixResults::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}

/// Gate `current` against the stored `baseline`: exact on every
/// deterministic field, then (when both sides ship a `timings.json` next
/// to their result table) percentage-banded on wall clocks. When a
/// journal digest diverges and both runs left per-trial `journal.jsonl`
/// artifacts, the first diverging journal event is printed too.
fn matrix_diff(baseline: &str, current: &str) {
    let base = load_results(baseline);
    let cur = load_results(current);
    if let Some(d) = diff_results(&base, &cur) {
        println!("divergence: {d}");
        if d.metric == "journal_digest" {
            let dir_of = |p: &str| {
                std::path::Path::new(p)
                    .parent()
                    .map(|d| d.to_path_buf())
                    .unwrap_or_default()
            };
            if let Some(detail) = journal_drilldown(&dir_of(baseline), &dir_of(current), &d.trial) {
                println!("journal drill-down: {detail}");
            }
        }
        std::process::exit(1);
    }
    let side_timings = |p: &str| -> Option<std::collections::BTreeMap<String, u64>> {
        let path = std::path::Path::new(p).parent()?.join("timings.json");
        timings_from_json(&std::fs::read_to_string(path).ok()?).ok()
    };
    if let (Some(bt), Some(ct)) = (side_timings(baseline), side_timings(current)) {
        if let Some(d) = diff_timings(&bt, &ct, base.timing_tolerance_pct) {
            println!("timing divergence (advisory band): {d}");
            std::process::exit(1);
        }
    }
    println!(
        "identical: {} trial(s) of plan {:?} match the baseline",
        cur.trials.len(),
        cur.plan
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "info" => info(path),
        [cmd, path] if cmd == "dump" => dump(path),
        [cmd, path] if cmd == "check" => check(path),
        [cmd, path, ranks] if cmd == "replay" => {
            let ranks = ranks.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid rank count {ranks:?}");
                std::process::exit(2);
            });
            replay_cmd(path, ranks);
        }
        [j, cmd, path] if j == "journal" && cmd == "summarize" => journal_summarize(path),
        [j, cmd, path, rank] if j == "journal" && cmd == "timeline" => {
            let rank = rank.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid rank {rank:?}");
                std::process::exit(2);
            });
            journal_timeline(path, rank);
        }
        [j, cmd, path] if j == "journal" && cmd == "spans" => journal_spans(path),
        [j, cmd, path] if j == "journal" && cmd == "metrics" => journal_metrics(path),
        [j, cmd, path] if j == "journal" && cmd == "anomalies" => journal_anomalies(path),
        [j, cmd, a, b] if j == "journal" && cmd == "diff" => journal_diff(a, b),
        [c, cmd, path] if c == "ckpt" && cmd == "info" => ckpt_info(path),
        [c, cmd, dir] if c == "ckpt" && cmd == "latest" => ckpt_latest(dir),
        [m, cmd, path] if m == "matrix" && cmd == "expand" => matrix_expand(path),
        [m, cmd, path, tail @ ..] if m == "matrix" && cmd == "run" => {
            let mut jobs = 2usize;
            let mut out = "experiments_out/matrix".to_string();
            let mut rest = tail;
            while let [flag, value, more @ ..] = rest {
                match flag.as_str() {
                    "--jobs" => {
                        jobs = value.parse().unwrap_or_else(|_| {
                            eprintln!("error: invalid job count {value:?}");
                            std::process::exit(2);
                        });
                    }
                    "--out" => out = value.clone(),
                    other => {
                        eprintln!("error: unknown matrix run flag {other:?}");
                        std::process::exit(2);
                    }
                }
                rest = more;
            }
            if !rest.is_empty() {
                eprintln!("error: dangling matrix run argument {:?}", rest[0]);
                std::process::exit(2);
            }
            matrix_run(path, jobs, &out);
        }
        [m, cmd, baseline, current] if m == "matrix" && cmd == "diff" => {
            matrix_diff(baseline, current);
        }
        [c, cmd, ranks, steps, seed, marker, dir] if c == "chaos" && cmd == "supervise" => {
            let parse = |what: &str, v: &str| -> usize {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid {what} {v:?}");
                    std::process::exit(2);
                })
            };
            let seed = seed.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid seed {seed:?}");
                std::process::exit(2);
            });
            chaos_supervise(
                parse("rank count", ranks),
                parse("step count", steps),
                seed,
                parse("marker", marker),
                dir,
            );
        }
        _ => {
            eprintln!("usage: chamtrace info|dump|check <trace-file>");
            eprintln!("       chamtrace replay <trace-file> <ranks>");
            eprintln!("       chamtrace journal summarize|spans|metrics|anomalies <journal>");
            eprintln!("       chamtrace journal timeline <journal> <rank>");
            eprintln!("       chamtrace journal diff <journal-a> <journal-b>");
            eprintln!("       chamtrace ckpt info <blob> | ckpt latest <dir>");
            eprintln!("       chamtrace chaos supervise <ranks> <steps> <seed> <marker> <dir>");
            eprintln!("       chamtrace matrix expand <plan>");
            eprintln!("       chamtrace matrix run <plan> [--jobs N] [--out DIR]");
            eprintln!("       chamtrace matrix diff <baseline.json> <results.json>");
            std::process::exit(2);
        }
    }
}
