//! `chamtrace` — inspect, validate, replay, and serve Chameleon/ScalaTrace
//! trace artifacts from the command line.
//!
//! ```text
//! chamtrace info   <trace-file>             # summary statistics
//! chamtrace dump   <trace-file>             # pretty event listing
//! chamtrace check  <trace-file>             # parse + invariant checks
//! chamtrace replay <trace-file> <ranks>     # replay, print virtual time
//!
//! chamtrace journal summarize <journal> [--json]
//! chamtrace journal timeline  <journal> <r> [--json]
//! chamtrace journal spans     <journal> [--json]
//! chamtrace journal metrics   <journal> [--json]
//! chamtrace journal anomalies <journal> [--json]
//! chamtrace journal diff      <a> <b> [--json]
//!                                           # exit 1 on divergence,
//!                                           # 2 if either file is bad
//!
//! chamtrace ckpt info   <blob>              # decode a CKPT1 checkpoint
//! chamtrace ckpt latest <dir>               # newest ckpt-*.bin in a dir
//! chamtrace chaos supervise <ranks> <steps> <seed> <marker> <dir>
//!                           [--push ADDR]   # root-crash + restart demo
//!
//! chamtrace matrix expand <plan>            # list the trial cross product
//! chamtrace matrix run <plan> [--jobs N] [--out DIR] [--push ADDR]
//!                                           # run a scenario matrix
//! chamtrace matrix diff <baseline.json> <results.json>
//!                                           # regression gate (exit 1 on
//!                                           # first divergence)
//!
//! chamtrace serve [--addr A] [--data DIR] [--cache N] [--threads N]
//!                 [--max-body BYTES] [--hot-sessions N] [--backlog N]
//!                 [--faults SPEC]           # trace-service daemon
//! chamtrace push <addr> <run-id> <journal> [--ckpt <blob>] [--retries N]
//!                                           # upload a run at a daemon:
//!                                           # exit 0 ok, 1 rejected,
//!                                           # 2 transport failed
//! ```
//!
//! Journal files are the flight recorder's canonical JSONL
//! (`chameleon-obs-v1`, see OBSERVABILITY.md); malformed input fails
//! with the offending line number and exit code 2 — for `journal diff`
//! that applies to *both* operands: a parse failure in either file is
//! exit 2, never the divergence code 1. Checkpoint blobs are the
//! versioned `CKPT1` binary format (see FAULTS.md "Recovery"); corrupt
//! or truncated blobs also exit 2.
//!
//! With `--json`, every journal subcommand prints the same canonical
//! single-line JSON object the `chamtrace serve` daemon returns for the
//! matching endpoint — CLI and daemon answers diff byte for byte (see
//! OBSERVABILITY.md "Trace service").
//!
//! Matrix plans are declarative JSON scenario matrices (see
//! EXPERIMENTS.md "Running a matrix"); `matrix run` exits 1 when any
//! trial fails its invariants, `matrix diff` exits 1 naming the first
//! diverging trial + metric, and both exit 2 on malformed plans/tables.
//! `matrix run --push` streams each finished trial's journal at a
//! running daemon (push failures warn but do not fail the trial).
//!
//! Every push — `chamtrace push` and the `--push` hooks — carries a
//! `Content-Crc32` claim and retries transport failures and degraded
//! statuses (408/422/429/500/503) under a seeded-jitter exponential
//! backoff; the daemon's content-digest dedupe makes the retry loop
//! idempotent. `serve --faults` arms the deterministic service fault
//! plan (torn spills, connection drops, ENOSPC, the kill-`-9` stall
//! window) used by the crash-recovery tests and CI leg.

use chameleon::Checkpoint;
use chamserve::{ServeConfig, Server};
use mpisim::CostModel;
use obs::{query, RunJournal};
use scalatrace::{format, CompressedTrace, RankSet};
use workloads::chaos::{
    latest_checkpoint, marker_entry_ops, root_crash_plan, run_chaos_supervised,
};
use workloads::matrix::{
    diff_results, diff_timings, journal_drilldown, run_plan_with_push, timings_from_json,
    MatrixPlan, MatrixResults,
};

fn load(path: &str) -> CompressedTrace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    format::from_text(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid trace: {e}");
        std::process::exit(1);
    })
}

fn info(path: &str) {
    let t = load(path);
    let mut ranks = RankSet::empty();
    let mut ops = std::collections::BTreeMap::<&str, u64>::new();
    let mut total_time = 0.0;
    t.visit_events(&mut |e| {
        ranks = ranks.union(&e.ranks);
        *ops.entry(e.op.kind.mnemonic()).or_default() += 1;
        total_time += e.pre_time.total();
    });
    println!("trace:            {path}");
    println!("compressed nodes: {}", t.compressed_size());
    println!("dynamic events:   {}", t.dynamic_size());
    println!("ranks covered:    {} ({})", ranks.len(), ranks);
    println!("recorded compute: {total_time:.6}s");
    println!("events by op:");
    for (op, n) in ops {
        println!("  {op:<10} {n}");
    }
}

fn dump(path: &str) {
    let t = load(path);
    print!("{}", format::to_text(&t));
}

fn check(path: &str) {
    let t = load(path);
    let mut problems = 0u32;
    t.visit_events(&mut |e| {
        if e.ranks.is_empty() {
            eprintln!("event with empty ranklist: {:?}", e.op.kind);
            problems += 1;
        }
        if e.pre_time.count() == 0 {
            eprintln!("event with no time samples: {:?}", e.op.kind);
            problems += 1;
        }
    });
    if problems == 0 {
        println!(
            "ok: {} nodes, {} dynamic events",
            t.compressed_size(),
            t.dynamic_size()
        );
    } else {
        eprintln!("{problems} problem(s) found");
        std::process::exit(1);
    }
}

fn replay_cmd(path: &str, ranks: usize) {
    let t = load(path);
    match scalareplay::replay(&t, ranks, CostModel::default()) {
        Ok(rep) => {
            println!("replay virtual time: {:.6}s", rep.replay_vtime);
            println!("events executed:     {}", rep.events_executed);
            println!("events dropped:      {}", rep.dropped_events);
            println!("replay wall time:    {:?}", rep.wall);
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The one journal loader every `journal *` subcommand shares — the same
/// `RunJournal::load` the daemon's store builds on. Unreadable or
/// malformed input prints the path + line diagnostic and exits 2.
fn load_journal(path: &str) -> RunJournal {
    RunJournal::load(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

fn parse_rank(v: &str) -> usize {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid rank {v:?}");
        std::process::exit(2);
    })
}

/// Strip a `--json` flag (anywhere in the tail) and return the rest.
fn take_json_flag(tail: &[String]) -> (Vec<&str>, bool) {
    let mut json = false;
    let mut rest = Vec::new();
    for a in tail {
        if a == "--json" {
            json = true;
        } else {
            rest.push(a.as_str());
        }
    }
    (rest, json)
}

/// All `journal *` subcommands behind one loader and one dispatch, in
/// text or canonical-JSON form.
fn journal_cmd(tail: &[String]) {
    let (args, json) = take_json_flag(tail);
    match args.as_slice() {
        ["summarize", path] => {
            let j = load_journal(path);
            if json {
                print!("{}", query::summarize_json(&j));
            } else {
                print!("{}", j.summary());
            }
        }
        ["timeline", path, rank] => {
            let rank = parse_rank(rank);
            let j = load_journal(path);
            let rendered = if json {
                query::timeline_json(&j, rank)
            } else {
                query::timeline(&j, rank)
            };
            match rendered {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
        ["spans", path] => {
            let j = load_journal(path);
            if json {
                print!("{}", query::spans_json(&j));
            } else {
                print!("{}", query::span_report(&j));
            }
        }
        ["metrics", path] => {
            let j = load_journal(path);
            if json {
                print!("{}", query::metrics_json(&j));
            } else {
                print!("{}", query::metrics_report(&j));
            }
        }
        ["anomalies", path] => {
            let j = load_journal(path);
            if json {
                print!("{}", query::anomalies_json(&j));
            } else {
                print!("{}", query::anomaly_report(&j));
            }
        }
        ["diff", path_a, path_b] => {
            let a = load_journal(path_a);
            let b = load_journal(path_b);
            let divergence = query::diff(&a, &b);
            if json {
                print!("{}", query::diff_json(&a, &b));
            } else {
                match &divergence {
                    None => println!("identical: {path_a} and {path_b}"),
                    Some(d) => println!("divergence: {d}"),
                }
            }
            if divergence.is_some() {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}

fn load_ckpt(path: &str) -> Checkpoint {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Checkpoint::decode(&bytes).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}

fn ckpt_info(path: &str) {
    let c = load_ckpt(path);
    println!("checkpoint:      {path}");
    println!("marker:          {}", c.marker);
    println!("marker calls:    {}", c.marker_calls);
    println!("root:            {}", c.root);
    println!("alive:           {} ranks {:?}", c.alive.len(), c.alive);
    println!("journal hwm:     {}", c.journal_hwm);
    println!(
        "graph:           old_call_path={:#x} re_clustering={} lead_flag={}",
        c.old_call_path.0, c.re_clustering, c.lead_flag
    );
    match &c.selection {
        Some(sel) => println!(
            "selection:       k={} leads={:?}",
            sel.effective_k, sel.leads
        ),
        None => println!("selection:       none (pre-clustering)"),
    }
    println!(
        "online trace:    {} nodes, {} dynamic events",
        c.trace.compressed_size(),
        c.trace.dynamic_size()
    );
    println!("metric payload:  {} bytes", c.metrics.len());
}

fn ckpt_latest(dir: &str) {
    match latest_checkpoint(std::path::Path::new(dir)) {
        Some((marker, path)) => println!("marker {marker}: {}", path.display()),
        None => {
            eprintln!("error: no ckpt-*.bin under {dir}");
            std::process::exit(1);
        }
    }
}

/// Demo/debug driver for the tentpole scenario: crash rank 0 at the given
/// marker's entry under the standard lossy link, checkpointing every other
/// marker into `dir`, and let the supervisor restart from the latest blob
/// if the in-place failover cannot complete. With `--push`, the run's
/// journal and latest checkpoint are uploaded at a trace-service daemon
/// under run ID `chaos-s<seed>-m<marker>`.
fn chaos_supervise(
    ranks: usize,
    steps: usize,
    seed: u64,
    marker: usize,
    dir: &str,
    push: Option<&str>,
) {
    if marker >= steps {
        eprintln!("error: marker {marker} out of range (steps={steps})");
        std::process::exit(2);
    }
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    });
    let ops = marker_entry_ops(ranks, steps, root_crash_plan(seed, 0));
    let sup = run_chaos_supervised(
        ranks,
        steps,
        root_crash_plan(seed, ops[marker]),
        2,
        dir,
        true,
    );
    println!("crashed ranks:   {:?}", sup.outcome.crashed);
    println!("restarts:        {}", sup.restarts);
    match sup.resumed_marker {
        Some(m) => println!("resumed from:    marker {m}"),
        None => println!("resumed from:    (in-place failover, no restart)"),
    }
    println!(
        "online trace:    {} nodes, {} dynamic events",
        sup.outcome.online_trace.compressed_size(),
        sup.outcome.online_trace.dynamic_size()
    );
    let promotions: u64 = sup
        .outcome
        .stats
        .iter()
        .flatten()
        .map(|s| s.promotions)
        .max()
        .unwrap_or(0);
    println!("promotions:      {promotions}");
    if let Some(journal) = &sup.outcome.journal {
        println!(
            "journal:         {} events ({} checkpoint, {} promote, {} resume)",
            journal.events().count(),
            journal.count("checkpoint"),
            journal.count("promote"),
            journal.count("resume"),
        );
    }
    if let Some((m, path)) = latest_checkpoint(dir) {
        println!("latest ckpt:     marker {m} at {}", path.display());
    }
    if let Some(addr) = push {
        let run_id = format!("chaos-s{seed:016x}-m{marker:02}");
        if let Some(journal) = &sup.outcome.journal {
            match chamserve::push_journal(addr, &run_id, journal.to_jsonl().as_bytes()) {
                Ok(_) => println!("pushed journal:  {run_id} at {addr}"),
                Err(e) => eprintln!("warning: push journal: {e}"),
            }
        }
        if let Some((_, path)) = latest_checkpoint(dir) {
            match std::fs::read(&path) {
                Ok(blob) => match chamserve::push_checkpoint(addr, &run_id, &blob) {
                    Ok(_) => println!("pushed ckpt:     {run_id} at {addr}"),
                    Err(e) => eprintln!("warning: push checkpoint: {e}"),
                },
                Err(e) => eprintln!("warning: read {}: {e}", path.display()),
            }
        }
    }
}

fn load_plan(path: &str) -> MatrixPlan {
    MatrixPlan::load(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

fn matrix_expand(path: &str) {
    let plan = load_plan(path);
    let trials = plan.expand();
    for t in &trials {
        println!("{}", t.id);
    }
    eprintln!("{} trial(s) in plan {:?}", trials.len(), plan.name);
}

fn matrix_run(path: &str, jobs: usize, out: &str, push: Option<&str>) {
    let plan = load_plan(path);
    let out_root = std::path::Path::new(out);
    // The push hook streams each finished trial's journal at the daemon;
    // trial IDs are already valid run IDs (`[A-Za-z0-9._-]`). A push
    // failure warns — the trial's own verdict is untouched.
    let hook = push.map(|addr| {
        let addr = addr.to_string();
        move |id: &str, dir: &std::path::Path| {
            let journal_path = dir.join("journal.jsonl");
            let Ok(bytes) = std::fs::read(&journal_path) else {
                return; // journal-less trial (journal axis off)
            };
            if let Err(e) = chamserve::push_journal(&addr, id, &bytes) {
                eprintln!("warning: push {id}: {e}");
            }
        }
    });
    let (results, _timings) = run_plan_with_push(
        &plan,
        out_root,
        jobs,
        hook.as_ref()
            .map(|h| h as &(dyn Fn(&str, &std::path::Path) + Sync)),
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let failed: Vec<&str> = results
        .trials
        .iter()
        .filter(|t| !t.ok)
        .map(|t| t.id.as_str())
        .collect();
    println!(
        "plan {:?}: {} trial(s), {} failed; tables under {}",
        plan.name,
        results.trials.len(),
        failed.len(),
        out_root.join(&plan.name).display(),
    );
    for id in &failed {
        eprintln!("FAILED: {id}");
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}

fn load_results(path: &str) -> MatrixResults {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    MatrixResults::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}

/// Gate `current` against the stored `baseline`: exact on every
/// deterministic field, then (when both sides ship a `timings.json` next
/// to their result table) percentage-banded on wall clocks. When a
/// journal digest diverges and both runs left per-trial `journal.jsonl`
/// artifacts, the first diverging journal event is printed too.
fn matrix_diff(baseline: &str, current: &str) {
    let base = load_results(baseline);
    let cur = load_results(current);
    if let Some(d) = diff_results(&base, &cur) {
        println!("divergence: {d}");
        if d.metric == "journal_digest" {
            let dir_of = |p: &str| {
                std::path::Path::new(p)
                    .parent()
                    .map(|d| d.to_path_buf())
                    .unwrap_or_default()
            };
            if let Some(detail) = journal_drilldown(&dir_of(baseline), &dir_of(current), &d.trial) {
                println!("journal drill-down: {detail}");
            }
        }
        std::process::exit(1);
    }
    let side_timings = |p: &str| -> Option<std::collections::BTreeMap<String, u64>> {
        let path = std::path::Path::new(p).parent()?.join("timings.json");
        timings_from_json(&std::fs::read_to_string(path).ok()?).ok()
    };
    if let (Some(bt), Some(ct)) = (side_timings(baseline), side_timings(current)) {
        if let Some(d) = diff_timings(&bt, &ct, base.timing_tolerance_pct) {
            println!("timing divergence (advisory band): {d}");
            std::process::exit(1);
        }
    }
    println!(
        "identical: {} trial(s) of plan {:?} match the baseline",
        cur.trials.len(),
        cur.plan
    );
}

/// `chamtrace serve`: run the trace-service daemon in the foreground
/// until a `POST /shutdown` arrives.
fn serve_cmd(tail: &[String]) {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServeConfig::default();
    let mut rest = tail;
    while let [flag, value, more @ ..] = rest {
        let count = |what: &str| -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid {what} {value:?}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value.clone(),
            "--data" => cfg.data_dir = std::path::PathBuf::from(value),
            "--cache" => cfg.cache_entries = count("cache capacity"),
            "--threads" => cfg.threads = count("thread count"),
            "--max-body" => cfg.max_body = count("body cap"),
            "--hot-sessions" => cfg.hot_sessions = count("hot-session cap"),
            "--backlog" => cfg.backlog = count("backlog"),
            "--faults" => {
                cfg.faults = Some(chamserve::SvcFaultPlan::parse(value).unwrap_or_else(|e| {
                    eprintln!("error: --faults: {e}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("error: unknown serve flag {other:?}");
                std::process::exit(2);
            }
        }
        rest = more;
    }
    if !rest.is_empty() {
        eprintln!("error: dangling serve argument {:?}", rest[0]);
        std::process::exit(2);
    }
    let server = Server::start(&addr, cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    println!("listening on {}", server.addr());
    server.wait();
}

/// `chamtrace push`: upload one run's journal (and optionally one
/// checkpoint blob) at a daemon, printing the daemon's JSON receipts.
///
/// Exit-code contract (pinned in `crates/bench/tests/cli.rs`):
/// `0` every receipt landed; `1` the daemon *rejected* an upload
/// (semantic failure — retrying cannot help); `2` transport failed after
/// the retry budget (daemon down/flapping — retrying later may help).
/// Both failure modes put the attempt count and last error on stderr.
fn push_cmd(addr: &str, run_id: &str, journal: &str, ckpt: Option<&str>, retries: u32) {
    let policy = chamserve::RetryPolicy {
        attempts: retries.max(1),
        ..chamserve::RetryPolicy::default()
    };
    let settle = |what: &str, outcome: Result<String, chamserve::PushError>| match outcome {
        Ok(receipt) => print!("{receipt}"),
        Err(e @ chamserve::PushError::Rejected { .. }) => {
            eprintln!("error: push {what}: {e}");
            std::process::exit(1);
        }
        Err(e @ chamserve::PushError::Transport { .. }) => {
            eprintln!("error: push {what}: {e}");
            std::process::exit(2);
        }
    };
    let jsonl = std::fs::read(journal).unwrap_or_else(|e| {
        eprintln!("error: cannot read {journal}: {e}");
        std::process::exit(2);
    });
    settle(
        "journal",
        chamserve::push_journal_with(addr, run_id, &jsonl, &policy),
    );
    if let Some(path) = ckpt {
        let blob = std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        settle(
            "checkpoint",
            chamserve::push_checkpoint_with(addr, run_id, &blob, &policy),
        );
    }
}

fn usage() -> ! {
    eprintln!("usage: chamtrace info|dump|check <trace-file>");
    eprintln!("       chamtrace replay <trace-file> <ranks>");
    eprintln!("       chamtrace journal summarize|spans|metrics|anomalies <journal> [--json]");
    eprintln!("       chamtrace journal timeline <journal> <rank> [--json]");
    eprintln!("       chamtrace journal diff <journal-a> <journal-b> [--json]");
    eprintln!("       chamtrace ckpt info <blob> | ckpt latest <dir>");
    eprintln!(
        "       chamtrace chaos supervise <ranks> <steps> <seed> <marker> <dir> [--push ADDR]"
    );
    eprintln!("       chamtrace matrix expand <plan>");
    eprintln!("       chamtrace matrix run <plan> [--jobs N] [--out DIR] [--push ADDR]");
    eprintln!("       chamtrace matrix diff <baseline.json> <results.json>");
    eprintln!("       chamtrace serve [--addr A] [--data DIR] [--cache N] [--threads N]");
    eprintln!("                       [--max-body BYTES] [--hot-sessions N] [--backlog N]");
    eprintln!("                       [--faults SPEC]     # seed=..,torn=..,stall_ingest=..");
    eprintln!("       chamtrace push <addr> <run-id> <journal> [--ckpt <blob>] [--retries N]");
    eprintln!("                       # exit 0 ok, 1 rejected, 2 transport failed");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "info" => info(path),
        [cmd, path] if cmd == "dump" => dump(path),
        [cmd, path] if cmd == "check" => check(path),
        [cmd, path, ranks] if cmd == "replay" => {
            let ranks = ranks.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid rank count {ranks:?}");
                std::process::exit(2);
            });
            replay_cmd(path, ranks);
        }
        [j, tail @ ..] if j == "journal" => journal_cmd(tail),
        [c, cmd, path] if c == "ckpt" && cmd == "info" => ckpt_info(path),
        [c, cmd, dir] if c == "ckpt" && cmd == "latest" => ckpt_latest(dir),
        [m, cmd, path] if m == "matrix" && cmd == "expand" => matrix_expand(path),
        [m, cmd, path, tail @ ..] if m == "matrix" && cmd == "run" => {
            let mut jobs = 2usize;
            let mut out = "experiments_out/matrix".to_string();
            let mut push: Option<String> = None;
            let mut rest = tail;
            while let [flag, value, more @ ..] = rest {
                match flag.as_str() {
                    "--jobs" => {
                        jobs = value.parse().unwrap_or_else(|_| {
                            eprintln!("error: invalid job count {value:?}");
                            std::process::exit(2);
                        });
                    }
                    "--out" => out = value.clone(),
                    "--push" => push = Some(value.clone()),
                    other => {
                        eprintln!("error: unknown matrix run flag {other:?}");
                        std::process::exit(2);
                    }
                }
                rest = more;
            }
            if !rest.is_empty() {
                eprintln!("error: dangling matrix run argument {:?}", rest[0]);
                std::process::exit(2);
            }
            matrix_run(path, jobs, &out, push.as_deref());
        }
        [m, cmd, baseline, current] if m == "matrix" && cmd == "diff" => {
            matrix_diff(baseline, current);
        }
        [c, cmd, ranks, steps, seed, marker, dir, tail @ ..]
            if c == "chaos" && cmd == "supervise" =>
        {
            let parse = |what: &str, v: &str| -> usize {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid {what} {v:?}");
                    std::process::exit(2);
                })
            };
            let seed = seed.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid seed {seed:?}");
                std::process::exit(2);
            });
            let push = match tail {
                [] => None,
                [flag, addr] if flag == "--push" => Some(addr.as_str()),
                _ => {
                    eprintln!("error: unknown chaos supervise arguments {tail:?}");
                    std::process::exit(2);
                }
            };
            chaos_supervise(
                parse("rank count", ranks),
                parse("step count", steps),
                seed,
                parse("marker", marker),
                dir,
                push,
            );
        }
        [s, tail @ ..] if s == "serve" => serve_cmd(tail),
        [p, addr, run_id, journal, tail @ ..] if p == "push" => {
            let mut ckpt: Option<&str> = None;
            let mut retries = chamserve::RetryPolicy::default().attempts;
            let mut rest = tail;
            while let [flag, value, more @ ..] = rest {
                match flag.as_str() {
                    "--ckpt" => ckpt = Some(value.as_str()),
                    "--retries" => {
                        retries = value.parse().unwrap_or_else(|_| {
                            eprintln!("error: invalid retry count {value:?}");
                            std::process::exit(2);
                        });
                    }
                    other => {
                        eprintln!("error: unknown push flag {other:?}");
                        std::process::exit(2);
                    }
                }
                rest = more;
            }
            if !rest.is_empty() {
                eprintln!("error: dangling push argument {:?}", rest[0]);
                std::process::exit(2);
            }
            push_cmd(addr, run_id, journal, ckpt, retries);
        }
        _ => usage(),
    }
}
