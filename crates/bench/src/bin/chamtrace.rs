//! `chamtrace` — inspect, validate, and replay Chameleon/ScalaTrace trace
//! files from the command line.
//!
//! ```text
//! chamtrace info   <trace-file>             # summary statistics
//! chamtrace dump   <trace-file>             # pretty event listing
//! chamtrace check  <trace-file>             # parse + invariant checks
//! chamtrace replay <trace-file> <ranks>     # replay, print virtual time
//! ```

use mpisim::CostModel;
use scalatrace::{format, CompressedTrace, RankSet};

fn load(path: &str) -> CompressedTrace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    format::from_text(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid trace: {e}");
        std::process::exit(1);
    })
}

fn info(path: &str) {
    let t = load(path);
    let mut ranks = RankSet::empty();
    let mut ops = std::collections::BTreeMap::<&str, u64>::new();
    let mut total_time = 0.0;
    t.visit_events(&mut |e| {
        ranks = ranks.union(&e.ranks);
        *ops.entry(e.op.kind.mnemonic()).or_default() += 1;
        total_time += e.pre_time.total();
    });
    println!("trace:            {path}");
    println!("compressed nodes: {}", t.compressed_size());
    println!("dynamic events:   {}", t.dynamic_size());
    println!("ranks covered:    {} ({})", ranks.len(), ranks);
    println!("recorded compute: {total_time:.6}s");
    println!("events by op:");
    for (op, n) in ops {
        println!("  {op:<10} {n}");
    }
}

fn dump(path: &str) {
    let t = load(path);
    print!("{}", format::to_text(&t));
}

fn check(path: &str) {
    let t = load(path);
    let mut problems = 0u32;
    t.visit_events(&mut |e| {
        if e.ranks.is_empty() {
            eprintln!("event with empty ranklist: {:?}", e.op.kind);
            problems += 1;
        }
        if e.pre_time.count() == 0 {
            eprintln!("event with no time samples: {:?}", e.op.kind);
            problems += 1;
        }
    });
    if problems == 0 {
        println!(
            "ok: {} nodes, {} dynamic events",
            t.compressed_size(),
            t.dynamic_size()
        );
    } else {
        eprintln!("{problems} problem(s) found");
        std::process::exit(1);
    }
}

fn replay_cmd(path: &str, ranks: usize) {
    let t = load(path);
    match scalareplay::replay(&t, ranks, CostModel::default()) {
        Ok(rep) => {
            println!("replay virtual time: {:.6}s", rep.replay_vtime);
            println!("events executed:     {}", rep.events_executed);
            println!("events dropped:      {}", rep.dropped_events);
            println!("replay wall time:    {:?}", rep.wall);
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "info" => info(path),
        [cmd, path] if cmd == "dump" => dump(path),
        [cmd, path] if cmd == "check" => check(path),
        [cmd, path, ranks] if cmd == "replay" => {
            let ranks = ranks.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid rank count {ranks:?}");
                std::process::exit(2);
            });
            replay_cmd(path, ranks);
        }
        _ => {
            eprintln!("usage: chamtrace info|dump|check <trace-file>");
            eprintln!("       chamtrace replay <trace-file> <ranks>");
            std::process::exit(2);
        }
    }
}
