//! Harness binary regenerating the paper's table1 (see DESIGN.md).
use chameleon_bench::{experiments, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    experiments::table1(&cfg).emit(cfg.out_dir.as_deref(), "table1");
}
