//! Harness binary regenerating the paper's table2 (see DESIGN.md).
use chameleon_bench::{experiments, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    experiments::table2(&cfg).emit(cfg.out_dir.as_deref(), "table2");
}
