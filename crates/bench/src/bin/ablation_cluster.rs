//! Harness binary regenerating the paper's ablation_cluster (see DESIGN.md).
use chameleon_bench::{experiments, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    experiments::ablation_cluster(&cfg).emit(cfg.out_dir.as_deref(), "ablation_cluster");
}
