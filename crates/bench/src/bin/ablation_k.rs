//! Harness binary regenerating the paper's ablation_k (see DESIGN.md).
use chameleon_bench::{experiments, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    experiments::ablation_k(&cfg).emit(cfg.out_dir.as_deref(), "ablation_k");
}
