//! Harness binary regenerating the paper's fig7 (see DESIGN.md).
use chameleon_bench::{experiments, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    experiments::fig7(&cfg).emit(cfg.out_dir.as_deref(), "fig7");
}
