//! Harness binary for the energy experiment (see DESIGN.md).
use chameleon_bench::{experiments, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    experiments::energy(&cfg).emit(cfg.out_dir.as_deref(), "energy");
}
