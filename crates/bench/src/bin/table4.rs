//! Harness binary regenerating the paper's table4 (see DESIGN.md).
use chameleon_bench::{experiments, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    experiments::table4(&cfg).emit(cfg.out_dir.as_deref(), "table4");
}
