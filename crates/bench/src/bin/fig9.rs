//! Harness binary regenerating the paper's fig9 (see DESIGN.md).
use chameleon_bench::{experiments, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    experiments::fig9(&cfg).emit(cfg.out_dir.as_deref(), "fig9");
}
