//! Harness binary for the ablation_radix experiment (see DESIGN.md).
use chameleon_bench::{experiments, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    experiments::ablation_radix(&cfg).emit(cfg.out_dir.as_deref(), "ablation_radix");
}
