//! Run the complete reproduction suite and emit every table/figure.
use chameleon_bench::{experiments, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    for (slug, table) in experiments::run_all(&cfg) {
        table.emit(cfg.out_dir.as_deref(), &slug);
    }
}
