//! The experiment implementations behind every harness binary.
//!
//! Each function reproduces one table or figure of the paper and returns a
//! [`Table`] ready to print/emit. `run_all` composes them. DESIGN.md's
//! experiment index maps each function to the paper artifact it
//! regenerates; EXPERIMENTS.md records paper-vs-measured outcomes.

use std::sync::Arc;
use std::time::Duration;

use chameleon::AlgoChoice;
use mpisim::CostModel;
use scalareplay::{accuracy, replay};
use workloads::driver::{run, Mode, Overrides, RunReport, ScaledWorkload};
use workloads::lu::LuPhaseChange;
use workloads::{Class, Workload};

use crate::config::HarnessConfig;
use crate::registry::{workload, STRONG_SET, TABLE2_SET, WEAK_SET};
use crate::report::{secs, speedup, Table};

fn chameleon_run(cfg: &HarnessConfig, name: &str, p: usize, ov: Overrides) -> RunReport {
    run(workload(name, cfg.scale), cfg.class, p, Mode::Chameleon, ov)
}

fn fixed_p(cfg: &HarnessConfig, preferred: usize) -> usize {
    preferred.min(cfg.max_p)
}

/// Table I: the number of clusters per benchmark. We report both the
/// paper's a-priori K and the Call-Path group count Chameleon observed —
/// the skeletons are constructed so the two coincide.
pub fn table1(cfg: &HarnessConfig) -> Table {
    let mut t = Table::new(
        "Table I: # of clusters for the tested benchmarks",
        &["Pgm", "K (paper)", "Call-Paths observed", "leads elected"],
    );
    for name in TABLE2_SET {
        let p = if name == "EMF" {
            fixed_p(cfg, 33) // 1 master + 32 workers
        } else {
            fixed_p(cfg, 16)
        };
        let rep = chameleon_run(cfg, name, p, Overrides::default());
        let s = &rep.cham_stats[0];
        t.row(&[
            name.to_string(),
            rep.spec.k.to_string(),
            s.call_paths.to_string(),
            s.leads.to_string(),
        ]);
    }
    t
}

/// Table II: marker calls and state tallies per benchmark.
pub fn table2(cfg: &HarnessConfig) -> Table {
    let mut t = Table::new(
        "Table II: # marker calls and states C/L/AT",
        &["Pgm (P)", "#Iters", "#Freq", "#Calls", "#C", "#L", "#AT"],
    );
    let mut add = |name: &str, p: usize| {
        // Table II is defined at class D (LU couples steps to class).
        let mut c = cfg.clone();
        c.class = Class::D;
        let rep = chameleon_run(&c, name, p, Overrides::default());
        let s = &rep.cham_stats[0];
        t.row(&[
            format!("{name}({p})"),
            rep.spec.total_steps().to_string(),
            rep.spec.call_frequency.to_string(),
            s.marker_calls.to_string(),
            s.states.c.to_string(),
            s.states.l.to_string(),
            s.states.at.to_string(),
        ]);
    };
    for name in TABLE2_SET {
        if name == "EMF" {
            continue;
        }
        add(name, fixed_p(cfg, 64));
    }
    for p in cfg.emf_sweep() {
        add("EMF", p);
    }
    if cfg.emf_sweep().is_empty() {
        add("EMF", fixed_p(cfg, 17));
    }
    t
}

/// Table III: ACURDION vs Chameleon execution overhead for BT under the
/// maximum number of marker calls (Call_Frequency = 1).
pub fn table3(cfg: &HarnessConfig) -> Table {
    let mut t = Table::new(
        "Table III: overhead [s], BT class D — ACURDION vs Chameleon (max marker calls)",
        &["P", "ACURDION", "Chameleon", "Chameleon/ACURDION"],
    );
    for p in cfg.p_sweep() {
        let ac = run(
            workload("BT", cfg.scale),
            cfg.class,
            p,
            Mode::Acurdion,
            Overrides::default(),
        );
        let ch = chameleon_run(
            cfg,
            "BT",
            p,
            Overrides {
                call_frequency: Some(1),
                ..Default::default()
            },
        );
        let (a, c) = (ac.total_overhead(), ch.total_overhead());
        let ratio = if a.as_secs_f64() > 0.0 {
            format!("{:.2}", c.as_secs_f64() / a.as_secs_f64())
        } else {
            "-".into()
        };
        t.row(&[p.to_string(), secs(a), secs(c), ratio]);
    }
    t
}

/// Table IV: per-state trace memory for BT — rank 0, a non-root lead, and
/// the non-lead average.
pub fn table4(cfg: &HarnessConfig) -> Table {
    let p = fixed_p(cfg, 256);
    let rep = chameleon_run(
        cfg,
        "BT",
        p,
        Overrides {
            call_frequency: Some(1),
            ..Default::default()
        },
    );
    // Leads are the ranks with non-zero L-state bytes; rank 0 reported
    // separately (it also holds the online trace).
    let leads: Vec<usize> = rep
        .cham_stats
        .iter()
        .enumerate()
        .filter(|(_, s)| s.mem.get("L").1 > 0)
        .map(|(r, _)| r)
        .collect();
    let lead_nonroot = leads.iter().copied().find(|&r| r != 0);
    let nonleads: Vec<usize> = (0..p).filter(|r| !leads.contains(r) && *r != 0).collect();
    let mut t = Table::new(
        format!("Table IV: trace memory [bytes] per state, BT, P={p} — leads: {leads:?}"),
        &[
            "State",
            "#Calls",
            "rank 0",
            "lead (non-root)",
            "non-lead avg",
        ],
    );
    let avg_of = |ranks: &[usize], label: &str| -> u64 {
        if ranks.is_empty() {
            return 0;
        }
        ranks
            .iter()
            .map(|&r| rep.cham_stats[r].mem.avg(label))
            .sum::<u64>()
            / ranks.len() as u64
    };
    for label in ["AT", "C", "L", "F"] {
        let (calls, _) = rep.cham_stats[0].mem.get(label);
        t.row(&[
            label.to_string(),
            calls.to_string(),
            rep.cham_stats[0].mem.avg(label).to_string(),
            lead_nonroot
                .map(|r| rep.cham_stats[r].mem.avg(label).to_string())
                .unwrap_or_else(|| "-".into()),
            avg_of(&nonleads, label).to_string(),
        ]);
    }
    t.row(&[
        "Avg/call".into(),
        rep.cham_stats[0].states.total().to_string(),
        rep.cham_stats[0].mem.avg_overall().to_string(),
        lead_nonroot
            .map(|r| rep.cham_stats[r].mem.avg_overall().to_string())
            .unwrap_or_else(|| "-".into()),
        if nonleads.is_empty() {
            "0".into()
        } else {
            (nonleads
                .iter()
                .map(|&r| rep.cham_stats[r].mem.avg_overall())
                .sum::<u64>()
                / nonleads.len() as u64)
                .to_string()
        },
    ]);
    t
}

/// Figure 4: strong-scaling execution overhead — APP (virtual) vs
/// Chameleon vs ScalaTrace (both real, aggregated across ranks).
pub fn fig4(cfg: &HarnessConfig) -> Table {
    let mut t = Table::new(
        "Figure 4: strong scaling — APP time vs tracing overhead",
        &[
            "Pgm",
            "P",
            "APP [virt s]",
            "Chameleon [s]",
            "ScalaTrace [s]",
            "ST/CH",
        ],
    );
    for name in STRONG_SET {
        let sweep = if name == "EMF" {
            let s = cfg.emf_sweep();
            if s.is_empty() {
                vec![fixed_p(cfg, 17)]
            } else {
                s
            }
        } else {
            cfg.p_sweep()
        };
        for p in sweep {
            let app = run(
                workload(name, cfg.scale),
                cfg.class,
                p,
                Mode::AppOnly,
                Overrides::default(),
            );
            let ch = chameleon_run(cfg, name, p, Overrides::default());
            let st = run(
                workload(name, cfg.scale),
                cfg.class,
                p,
                Mode::ScalaTrace,
                Overrides::default(),
            );
            t.row(&[
                name.to_string(),
                p.to_string(),
                format!("{:.4}", app.app_vtime),
                secs(ch.total_overhead()),
                secs(st.total_overhead()),
                speedup(st.total_overhead(), ch.total_overhead()),
            ]);
        }
    }
    t
}

/// Figures 5 (strong) and 7 (weak): replay times and accuracy.
fn replay_table(cfg: &HarnessConfig, title: &str, set: &[&str]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "Pgm",
            "P",
            "APP [virt s]",
            "ST replay [virt s]",
            "CH replay [virt s]",
            "ACC vs ST",
            "CH dropped",
        ],
    );
    for &name in set {
        let sweep = if name == "EMF" {
            let s = cfg.emf_sweep();
            if s.is_empty() {
                vec![fixed_p(cfg, 17)]
            } else {
                s
            }
        } else {
            cfg.p_sweep()
        };
        for p in sweep {
            let app = run(
                workload(name, cfg.scale),
                cfg.class,
                p,
                Mode::AppOnly,
                Overrides::default(),
            );
            let st = run(
                workload(name, cfg.scale),
                cfg.class,
                p,
                Mode::ScalaTrace,
                Overrides::default(),
            );
            let ch = chameleon_run(cfg, name, p, Overrides::default());
            let st_trace = st.global_trace.expect("ScalaTrace produces a trace");
            let ch_trace = ch.global_trace.expect("Chameleon produces a trace");
            let st_rep = replay(&st_trace, p, CostModel::default()).expect("ScalaTrace replay");
            let ch_rep = replay(&ch_trace, p, CostModel::default()).expect("Chameleon replay");
            let acc = accuracy(st_rep.replay_vtime, ch_rep.replay_vtime);
            t.row(&[
                name.to_string(),
                p.to_string(),
                format!("{:.4}", app.app_vtime),
                format!("{:.4}", st_rep.replay_vtime),
                format!("{:.4}", ch_rep.replay_vtime),
                format!("{:.1}%", acc * 100.0),
                ch_rep.dropped_events.to_string(),
            ]);
        }
    }
    t
}

/// Figure 5: strong-scaling replay accuracy.
pub fn fig5(cfg: &HarnessConfig) -> Table {
    replay_table(
        cfg,
        "Figure 5: strong scaling — replay time and accuracy",
        &STRONG_SET,
    )
}

/// Figure 6: weak-scaling overhead (LU and Sweep3D).
pub fn fig6(cfg: &HarnessConfig) -> Table {
    let mut t = Table::new(
        "Figure 6: weak scaling — tracing overhead",
        &[
            "Pgm",
            "P",
            "APP [virt s]",
            "Chameleon [s]",
            "ScalaTrace [s]",
            "ST/CH",
        ],
    );
    for name in WEAK_SET {
        for p in cfg.p_sweep() {
            let app = run(
                workload(name, cfg.scale),
                cfg.class,
                p,
                Mode::AppOnly,
                Overrides::default(),
            );
            let ch = chameleon_run(cfg, name, p, Overrides::default());
            let st = run(
                workload(name, cfg.scale),
                cfg.class,
                p,
                Mode::ScalaTrace,
                Overrides::default(),
            );
            t.row(&[
                name.to_string(),
                p.to_string(),
                format!("{:.4}", app.app_vtime),
                secs(ch.total_overhead()),
                secs(st.total_overhead()),
                speedup(st.total_overhead(), ch.total_overhead()),
            ]);
        }
    }
    t
}

/// Figure 7: weak-scaling replay accuracy.
pub fn fig7(cfg: &HarnessConfig) -> Table {
    replay_table(
        cfg,
        "Figure 7: weak scaling — replay time and accuracy",
        &WEAK_SET,
    )
}

/// Figure 8: overhead per component under the maximum number of marker
/// calls (Call_Frequency = 1), Chameleon vs ScalaTrace.
pub fn fig8(cfg: &HarnessConfig) -> Table {
    let p = fixed_p(cfg, 1024.min(cfg.max_p));
    let mut t = Table::new(
        format!("Figure 8: per-component overhead, max marker calls, P={p}"),
        &[
            "Pgm",
            "CH cluster [s]",
            "CH intercomp [s]",
            "CH sig+vote [s]",
            "ST intercomp [s]",
            "ST/CH total",
        ],
    );
    for name in ["BT", "LU", "SP", "POP"] {
        let ch = chameleon_run(
            cfg,
            name,
            p,
            Overrides {
                call_frequency: Some(1),
                ..Default::default()
            },
        );
        let st = run(
            workload(name, cfg.scale),
            cfg.class,
            p,
            Mode::ScalaTrace,
            Overrides::default(),
        );
        let cluster: Duration = ch.cham_stats.iter().map(|s| s.clustering_time).sum();
        let inter: Duration = ch.cham_stats.iter().map(|s| s.intercomp_time).sum();
        let sigvote: Duration = ch
            .cham_stats
            .iter()
            .map(|s| s.signature_time + s.vote_time)
            .sum();
        t.row(&[
            name.to_string(),
            secs(cluster),
            secs(inter),
            secs(sigvote),
            secs(st.total_overhead()),
            speedup(st.total_overhead(), ch.total_overhead()),
        ]);
    }
    t
}

/// Figure 9: Chameleon overhead vs the number of marker (clustering)
/// calls — the Call_Frequency sweep on LU.
pub fn fig9(cfg: &HarnessConfig) -> Table {
    let p = fixed_p(cfg, 1024.min(cfg.max_p));
    let w = workload("LU", cfg.scale);
    let total_steps = w.spec(cfg.class, p).total_steps() as u64;
    let mut t = Table::new(
        format!("Figure 9: overhead vs # marker calls, LU, P={p}"),
        &["#Calls", "Freq", "Chameleon [s]", "ScalaTrace [s]"],
    );
    let st = run(
        Arc::clone(&w),
        cfg.class,
        p,
        Mode::ScalaTrace,
        Overrides::default(),
    );
    let mut freqs: Vec<u64> = vec![
        total_steps,
        total_steps / 2,
        total_steps / 5,
        total_steps / 10,
        1,
    ];
    freqs.retain(|&f| f >= 1);
    freqs.dedup();
    for freq in freqs {
        let ch = run(
            Arc::clone(&w),
            cfg.class,
            p,
            Mode::Chameleon,
            Overrides {
                call_frequency: Some(freq),
                ..Default::default()
            },
        );
        t.row(&[
            ch.cham_stats[0].marker_calls.to_string(),
            freq.to_string(),
            secs(ch.total_overhead()),
            secs(st.total_overhead()),
        ]);
    }
    t
}

/// Figure 10: re-clustering cost — the modified LU with a phase change
/// every N timesteps, sweeping the number of re-clusterings.
pub fn fig10(cfg: &HarnessConfig) -> Table {
    let p = fixed_p(cfg, 1024.min(cfg.max_p));
    let mut t = Table::new(
        format!("Figure 10: re-clustering cost, modified LU, P={p}"),
        &[
            "Period",
            "#Re-clusterings",
            "Chameleon [s]",
            "ScalaTrace [s]",
        ],
    );
    let st = run(
        workload("LU", cfg.scale),
        cfg.class,
        p,
        Mode::ScalaTrace,
        Overrides::default(),
    );
    // The wrapped spec's actual step count (LuPhaseChange runs at
    // frequency 1, so the scale wrapper leaves it unscaled: 300 markers,
    // exactly the paper's configuration).
    let steps = ScaledWorkload::new(LuPhaseChange::new(10), cfg.scale)
        .spec(cfg.class, p)
        .main_steps;
    // Target re-clustering counts: the paper sweeps 1..30. A period of 1
    // would put the extra barrier in *every* step — itself a stable
    // pattern — so periods stay >= 2.
    let mut periods: Vec<usize> = [1usize, 3, 10, 30]
        .iter()
        .map(|r| (steps / r).max(2))
        .collect();
    periods.dedup();
    for period in periods {
        let w = Arc::new(ScaledWorkload::new(LuPhaseChange::new(period), cfg.scale));
        let ch = run(w, cfg.class, p, Mode::Chameleon, Overrides::default());
        t.row(&[
            period.to_string(),
            ch.cham_stats[0].reclusterings.to_string(),
            secs(ch.total_overhead()),
            secs(st.total_overhead()),
        ]);
    }
    t
}

/// Figure 11: overhead per input class (A–D) for LU at fixed P.
pub fn fig11(cfg: &HarnessConfig) -> Table {
    let p = fixed_p(cfg, 256);
    let mut t = Table::new(
        format!("Figure 11: overhead per method vs input class, LU, P={p}"),
        &[
            "Class",
            "#Steps",
            "APP [virt s]",
            "CH cluster [s]",
            "CH intercomp [s]",
            "ST intercomp [s]",
        ],
    );
    for class in Class::ALL {
        let mut c = cfg.clone();
        c.class = class;
        let app = run(
            workload("LU", c.scale),
            class,
            p,
            Mode::AppOnly,
            Overrides::default(),
        );
        let ch = chameleon_run(
            &c,
            "LU",
            p,
            Overrides {
                call_frequency: Some(1),
                ..Default::default()
            },
        );
        let st = run(
            workload("LU", c.scale),
            class,
            p,
            Mode::ScalaTrace,
            Overrides::default(),
        );
        let cluster: Duration = ch
            .cham_stats
            .iter()
            .map(|s| s.clustering_time + s.signature_time + s.vote_time)
            .sum();
        let inter: Duration = ch.cham_stats.iter().map(|s| s.intercomp_time).sum();
        t.row(&[
            class.label().to_string(),
            ch.spec.total_steps().to_string(),
            format!("{:.4}", app.app_vtime),
            secs(cluster),
            secs(inter),
            secs(st.total_overhead()),
        ]);
    }
    t
}

/// Ablation: clustering algorithm choice (K-farthest vs K-medoids vs
/// K-random) — accuracy and clustering cost on LU.
pub fn ablation_cluster(cfg: &HarnessConfig) -> Table {
    let p = fixed_p(cfg, 16);
    let mut t = Table::new(
        format!("Ablation: clustering algorithm, LU, P={p}"),
        &["Algorithm", "ACC vs ST", "cluster time [s]", "leads"],
    );
    let st = run(
        workload("LU", cfg.scale),
        cfg.class,
        p,
        Mode::ScalaTrace,
        Overrides::default(),
    );
    let st_rep = replay(
        st.global_trace.as_ref().expect("trace"),
        p,
        CostModel::default(),
    )
    .expect("replay");
    for (label, algo) in [
        ("k-farthest", AlgoChoice::Farthest),
        ("k-medoids", AlgoChoice::Medoids),
        ("k-random", AlgoChoice::Random(0xc0ffee)),
    ] {
        let ch = chameleon_run(
            cfg,
            "LU",
            p,
            Overrides {
                algo: Some(algo),
                ..Default::default()
            },
        );
        let rep = replay(
            ch.global_trace.as_ref().expect("trace"),
            p,
            CostModel::default(),
        )
        .expect("replay");
        let acc = accuracy(st_rep.replay_vtime, rep.replay_vtime);
        let cluster: Duration = ch.cham_stats.iter().map(|s| s.clustering_time).sum();
        t.row(&[
            label.to_string(),
            format!("{:.1}%", acc * 100.0),
            secs(cluster),
            ch.cham_stats[0].leads.to_string(),
        ]);
    }
    t
}

/// Ablation: the cluster budget K — trace size and accuracy as K sweeps
/// past the Call-Path count (the paper's key accuracy lever).
pub fn ablation_k(cfg: &HarnessConfig) -> Table {
    let p = fixed_p(cfg, 16);
    let mut t = Table::new(
        format!("Ablation: cluster budget K, LU, P={p}"),
        &[
            "K",
            "effective leads",
            "trace nodes",
            "ACC vs ST",
            "CH dropped",
        ],
    );
    let st = run(
        workload("LU", cfg.scale),
        cfg.class,
        p,
        Mode::ScalaTrace,
        Overrides::default(),
    );
    let st_rep = replay(
        st.global_trace.as_ref().expect("trace"),
        p,
        CostModel::default(),
    )
    .expect("replay");
    for k in [1usize, 3, 9, 16] {
        let ch = chameleon_run(
            cfg,
            "LU",
            p,
            Overrides {
                k: Some(k),
                ..Default::default()
            },
        );
        let trace = ch.global_trace.as_ref().expect("trace");
        let rep = replay(trace, p, CostModel::default()).expect("replay");
        let acc = accuracy(st_rep.replay_vtime, rep.replay_vtime);
        t.row(&[
            k.to_string(),
            ch.cham_stats[0].leads.to_string(),
            trace.compressed_size().to_string(),
            format!("{:.1}%", acc * 100.0),
            rep.dropped_events.to_string(),
        ]);
    }
    t
}

/// Extension experiment: the paper's proposed DVFS energy saving for
/// dark non-lead ranks (Conclusion & Observation 1).
pub fn energy(cfg: &HarnessConfig) -> Table {
    use chameleon::energy::{estimate, EnergyModel};
    let mut t = Table::new(
        "Extension: energy of clustered tracing (paper's DVFS future work)",
        &[
            "Pgm",
            "P",
            "dark fraction",
            "baseline [J]",
            "chameleon [J]",
            "chameleon+DVFS [J]",
            "DVFS saving",
        ],
    );
    for name in ["BT", "LU", "SP", "POP"] {
        let p = fixed_p(cfg, 64);
        let rep = chameleon_run(cfg, name, p, Overrides::default());
        let report = estimate(&rep.cham_stats, rep.app_vtime, EnergyModel::default());
        t.row(&[
            name.to_string(),
            p.to_string(),
            format!("{:.0}%", report.mean_dark_fraction * 100.0),
            format!("{:.2}", report.baseline_joules),
            format!("{:.2}", report.chameleon_joules),
            format!("{:.2}", report.chameleon_dvfs_joules),
            format!("{:.1}%", report.dvfs_saving() * 100.0),
        ]);
    }
    t
}

/// Ablation: reduction-tree radix (the paper's left/right-child trees
/// are radix 2; wider trees trade depth for per-node merge work).
pub fn ablation_radix(cfg: &HarnessConfig) -> Table {
    let p = fixed_p(cfg, 64);
    let mut t = Table::new(
        format!("Ablation: merge-tree radix, LU, P={p}"),
        &["Radix", "ScalaTrace [s]", "tree height"],
    );
    for radix in [2usize, 4, 8] {
        // Run ScalaTrace finalize with this radix by invoking the
        // baseline directly.
        let w = workload("LU", cfg.scale);
        let class = cfg.class;
        let spec = w.spec(class, p);
        let report = mpisim::World::new(mpisim::WorldConfig::new(p))
            .run(move |proc| {
                let mut tp = scalatrace::TracedProc::new(proc);
                for step in 0..spec.total_steps() {
                    match spec.phase_of(step) {
                        None => w.step(&mut tp, class, step),
                        Some(ph) => tp.frame(
                            workloads::PHASE_FRAMES[ph % workloads::PHASE_FRAMES.len()],
                            |tp| w.step(tp, class, step),
                        ),
                    }
                }
                chameleon::baselines::scalatrace_finalize(&mut tp, radix)
            })
            .expect("run failed");
        let total: Duration = report
            .results
            .iter()
            .map(|b| b.clustering_time + b.intercomp_time)
            .sum();
        t.row(&[
            radix.to_string(),
            secs(total),
            mpisim::RadixTree::new(radix, p).height().to_string(),
        ]);
    }
    t
}

/// Run everything (the `run_all` binary).
/// Flight-recorder digest: one Chameleon run with the recorder armed,
/// reported as per-event-kind totals from the run journal plus the
/// rank-aggregated overhead split ([`chameleon::AggregatedStats`]) and a
/// snapshot-over-markers table from the metrics plane. The journal's own
/// text summary goes to stderr for quick triage; the table is the TSV
/// artifact. Set `CHAM_JOURNAL=<path>` to also drop the raw journal
/// JSONL to disk for `chamtrace journal` queries.
pub fn observability(cfg: &HarnessConfig) -> Table {
    let p = fixed_p(cfg, 8);
    let rep = chameleon_run(
        cfg,
        "BT",
        p,
        Overrides {
            journal: true,
            journal_path: std::env::var_os("CHAM_JOURNAL").map(Into::into),
            ..Default::default()
        },
    );
    let journal = rep.journal.expect("journal was requested");
    eprint!("{}", journal.summary());
    let agg = chameleon::AggregatedStats::from_ranks(rep.cham_stats.iter());
    let mut t = Table::new(
        format!("Flight recorder digest: BT({p}), Chameleon mode"),
        &["metric", "value"],
    );
    let mut by_label: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for (_, e) in journal.events() {
        *by_label.entry(e.kind.label()).or_insert(0) += 1;
    }
    for (label, n) in &by_label {
        t.row(&[format!("events.{label}"), n.to_string()]);
    }
    t.row(&["overhead.total [s]".into(), secs(agg.total_overhead())]);
    t.row(&["overhead.signature [s]".into(), secs(agg.signature_time)]);
    t.row(&["overhead.vote [s]".into(), secs(agg.vote_time)]);
    t.row(&["overhead.clustering [s]".into(), secs(agg.clustering_time)]);
    t.row(&["overhead.intercomp [s]".into(), secs(agg.intercomp_time)]);
    for (lvl, m) in &agg.merge_levels {
        t.row(&[format!("merge.level{lvl}.merges"), m.merges.to_string()]);
    }
    t.row(&["marker_calls".into(), agg.marker_calls.to_string()]);
    t.row(&["degraded_slices".into(), agg.degraded_slices.to_string()]);
    t.row(&["lead_reelections".into(), agg.lead_reelections.to_string()]);
    // Snapshot-over-markers: the metrics plane's per-marker world deltas,
    // one row per snapshot with the headline counters and the receive-wait
    // p99 from the reduced histogram digest.
    let snaps = obs::query::snapshots(&journal);
    t.row(&["snapshot.count".into(), snaps.len().to_string()]);
    for s in &snaps {
        let ctr = |c: obs::Counter| s.ctrs.get(c as usize).copied().unwrap_or(0);
        let wait_p99 = s
            .hists
            .get(obs::HistId::RecvWaitNs as usize * obs::metrics::HIST_DIGEST_STRIDE + 2)
            .copied()
            .unwrap_or(0);
        t.row(&[
            format!("snapshot.m{}", s.marker),
            format!(
                "ranks={} signatures={} merges={} dp_cells={} recv_wait_p99_ns={}",
                s.ranks,
                ctr(obs::Counter::Signatures),
                ctr(obs::Counter::Merges),
                ctr(obs::Counter::DpCells),
                wait_p99
            ),
        ]);
    }
    t
}

pub fn run_all(cfg: &HarnessConfig) -> Vec<(String, Table)> {
    type Experiment = fn(&HarnessConfig) -> Table;
    let experiments: Vec<(&str, Experiment)> = vec![
        ("table1", table1),
        ("table2", table2),
        ("table3", table3),
        ("table4", table4),
        ("fig4", fig4),
        ("fig5", fig5),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("ablation_cluster", ablation_cluster),
        ("ablation_k", ablation_k),
        ("ablation_radix", ablation_radix),
        ("energy", energy),
        ("observability", observability),
    ];
    experiments
        .into_iter()
        .map(|(slug, f)| {
            eprintln!("[run_all] {slug} ...");
            (slug.to_string(), f(cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            max_p: 8,
            scale: 25,
            class: Class::A,
            out_dir: None,
        }
    }

    #[test]
    fn table1_produces_rows() {
        let t = table1(&tiny());
        assert_eq!(t.len(), TABLE2_SET.len());
    }

    #[test]
    fn table3_ratio_present() {
        let t = table3(&tiny());
        assert!(!t.is_empty());
    }

    #[test]
    fn fig9_sweeps_frequencies() {
        let t = fig9(&tiny());
        assert!(t.len() >= 2);
    }

    #[test]
    fn observability_digest_has_events_and_overheads() {
        let t = observability(&tiny());
        let r = t.render();
        assert!(r.contains("events.marker"));
        assert!(r.contains("events.state"));
        assert!(r.contains("events.snapshot"));
        assert!(r.contains("overhead.total [s]"));
        assert!(r.contains("marker_calls"));
        assert!(r.contains("snapshot.count"));
        assert!(r.contains("snapshot.m1"), "{r}");
        assert!(r.contains("recv_wait_p99_ns="), "{r}");
    }
}
