//! # chameleon-bench — the per-table / per-figure reproduction harness
//!
//! One binary per table and figure of the paper (see DESIGN.md's
//! experiment index): `table1` … `table4`, `fig4` … `fig11`, plus the
//! ablation binaries and `run_all`, which executes the full suite and
//! writes results under `experiments_out/`.
//!
//! All binaries accept the same flags:
//!
//! ```text
//! --max-p <N>    largest world size in sweeps        (default 64)
//! --scale <N>    iteration shrink factor             (default 10; 1 = paper-faithful)
//! --class <A-D>  input class where applicable        (default D)
//! --out <dir>    also write results as TSV files
//! --full         shorthand for --scale 1 --max-p 1024
//! ```
//!
//! The shrink factor divides timesteps and `Call_Frequency` together, so
//! marker counts, state sequences, and Call-Path structure — everything
//! the tables assert — are preserved exactly; only wall-clock magnitudes
//! shrink.

pub mod config;
pub mod experiments;
pub mod harness;
pub mod registry;
pub mod report;

pub use config::HarnessConfig;
pub use report::Table;
