//! Harness configuration from command-line flags.

use std::path::PathBuf;

use workloads::Class;

/// Shared flags of every harness binary.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Largest world size used in P sweeps.
    pub max_p: usize,
    /// Iteration shrink factor (1 = paper-faithful).
    pub scale: usize,
    /// Input class.
    pub class: Class,
    /// Optional TSV output directory.
    pub out_dir: Option<PathBuf>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            max_p: 64,
            scale: 10,
            class: Class::D,
            out_dir: None,
        }
    }
}

impl HarnessConfig {
    /// Parse from an explicit argument list (first element is NOT the
    /// program name).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut cfg = HarnessConfig::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--max-p" => {
                    cfg.max_p = it
                        .next()
                        .ok_or("--max-p needs a value")?
                        .parse()
                        .map_err(|_| "invalid --max-p")?;
                }
                "--scale" => {
                    cfg.scale = it
                        .next()
                        .ok_or("--scale needs a value")?
                        .parse()
                        .map_err(|_| "invalid --scale")?;
                    if cfg.scale == 0 {
                        return Err("--scale must be >= 1".into());
                    }
                }
                "--class" => {
                    cfg.class = match it.next().map(String::as_str) {
                        Some("A") | Some("a") => Class::A,
                        Some("B") | Some("b") => Class::B,
                        Some("C") | Some("c") => Class::C,
                        Some("D") | Some("d") => Class::D,
                        other => return Err(format!("invalid --class {other:?}")),
                    };
                }
                "--out" => {
                    cfg.out_dir = Some(PathBuf::from(it.next().ok_or("--out needs a directory")?));
                }
                "--full" => {
                    cfg.scale = 1;
                    cfg.max_p = 1024;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(cfg)
    }

    /// Parse from the process arguments, exiting with usage on error.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: [--max-p N] [--scale N] [--class A|B|C|D] [--out DIR] [--full]");
                std::process::exit(2);
            }
        }
    }

    /// The paper's strong-scaling P sweep, truncated at `max_p`. Falls
    /// back to `[max_p]` when even the smallest paper size exceeds it.
    pub fn p_sweep(&self) -> Vec<usize> {
        let sweep: Vec<usize> = [16usize, 64, 256, 1024]
            .into_iter()
            .filter(|&p| p <= self.max_p)
            .collect();
        if sweep.is_empty() {
            vec![self.max_p]
        } else {
            sweep
        }
    }

    /// The EMF sweep (one master + workers), truncated at `max_p`.
    pub fn emf_sweep(&self) -> Vec<usize> {
        [126usize, 251, 501, 1001]
            .into_iter()
            .filter(|&p| p <= self.max_p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessConfig, String> {
        HarnessConfig::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg.max_p, 64);
        assert_eq!(cfg.scale, 10);
        assert_eq!(cfg.class, Class::D);
        assert!(cfg.out_dir.is_none());
    }

    #[test]
    fn all_flags() {
        let cfg = parse(&[
            "--max-p", "256", "--scale", "2", "--class", "B", "--out", "/tmp/x",
        ])
        .unwrap();
        assert_eq!(cfg.max_p, 256);
        assert_eq!(cfg.scale, 2);
        assert_eq!(cfg.class, Class::B);
        assert_eq!(cfg.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    #[test]
    fn full_flag() {
        let cfg = parse(&["--full"]).unwrap();
        assert_eq!(cfg.scale, 1);
        assert_eq!(cfg.max_p, 1024);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--max-p"]).is_err());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--class", "Z"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn sweeps_respect_max_p() {
        let cfg = parse(&["--max-p", "64"]).unwrap();
        assert_eq!(cfg.p_sweep(), vec![16, 64]);
        let full = parse(&["--full"]).unwrap();
        assert_eq!(full.p_sweep(), vec![16, 64, 256, 1024]);
        assert_eq!(full.emf_sweep(), vec![126, 251, 501, 1001]);
    }
}
