//! Named workload constructors for the harness binaries.
//!
//! The name→constructor map itself lives in [`workloads::registry`] so
//! the scenario-matrix runner (`workloads::matrix`) can resolve plan
//! workload names without depending on the bench crate; this module
//! re-exports it for the existing harness call sites.

pub use workloads::registry::{try_workload, workload, STRONG_SET, TABLE2_SET, WEAK_SET};
