//! Result tables: aligned console output plus optional TSV files.

use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// A simple result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write as TSV under `dir/<slug>.tsv`.
    pub fn write_tsv(&self, dir: &Path, slug: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{slug}.tsv")))?;
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.headers.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }

    /// Print, and also write TSV when an output directory is configured.
    pub fn emit(&self, out_dir: Option<&Path>, slug: &str) {
        self.print();
        if let Some(dir) = out_dir {
            if let Err(e) = self.write_tsv(dir, slug) {
                eprintln!("warning: could not write {slug}.tsv: {e}");
            }
        }
    }
}

/// Human duration: microseconds up to seconds with sensible precision.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Seconds with engineering precision (TSV-friendly).
pub fn secs(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64())
}

/// Ratio formatted as "N.Nx", guarding the zero denominator.
pub fn speedup(base: Duration, other: Duration) -> String {
    let b = base.as_secs_f64();
    let o = other.as_secs_f64();
    if o == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.1}x", b / o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_alignment() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("## Demo"));
        assert!(r.contains("longer"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("Bad", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn tsv_roundtrip() {
        let dir = std::env::temp_dir().join("chameleon-bench-test");
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.write_tsv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.tsv")).unwrap();
        assert!(content.contains("a\tb"));
        assert!(content.contains("1\t2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.000s");
        assert_eq!(fmt_dur(Duration::from_millis(5)), "5.000ms");
        assert_eq!(fmt_dur(Duration::from_micros(7)), "7.0us");
        assert_eq!(
            speedup(Duration::from_secs(10), Duration::from_secs(2)),
            "5.0x"
        );
        assert_eq!(speedup(Duration::from_secs(1), Duration::ZERO), "inf");
    }
}
