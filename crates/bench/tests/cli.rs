//! Exit-code contract of the `chamtrace` binary.
//!
//! The documented contract (see the binary's header): exit 0 on success /
//! identity, 1 on a *semantic* divergence or failed trial, 2 on usage
//! errors and malformed input. The subtle case this suite pins: `journal
//! diff` must exit 2 — not the divergence code 1 — when *either* operand
//! fails to parse, including the second one (a malformed second file is a
//! broken input, not evidence of divergence).
//!
//! The matrix subcommands are covered end to end: `matrix run` on the
//! committed smoke plan, then `matrix diff` against the committed
//! baseline (exit 0), against a tampered table (exit 1, naming trial and
//! metric), and against garbage (exit 2).
//!
//! `chamtrace push` has its own pinned contract (0 receipt landed / 1
//! daemon rejected / 2 transport failed after retries), and the crash
//! drill at the bottom runs the real binary: `kill -9` mid-ingest in
//! the stall window between artifact write and manifest commit, then
//! restart and prove the committed run survives byte-identical while
//! the half-ingested one is quarantined.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn chamtrace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chamtrace"))
        .args(args)
        .output()
        .expect("chamtrace spawns")
}

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn fixture(name: &str) -> String {
    repo_path("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// Fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cham_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("chamtrace exits, not killed")
}

#[test]
fn no_args_is_usage_error() {
    let out = chamtrace(&[]);
    assert_eq!(code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn journal_diff_exit_codes() {
    let valid_a = fixture("bt4_chameleon.journal.jsonl");
    let valid_b = fixture("bt4_chameleon_nosnap.journal.jsonl");

    // Identity: 0.
    let out = chamtrace(&["journal", "diff", &valid_a, &valid_a]);
    assert_eq!(code(&out), 0, "self-diff must exit 0");
    assert!(String::from_utf8_lossy(&out.stdout).contains("identical"));

    // Two valid journals that differ: 1, with the divergence named.
    let out = chamtrace(&["journal", "diff", &valid_a, &valid_b]);
    assert_eq!(code(&out), 1, "semantic divergence must exit 1");
    assert!(String::from_utf8_lossy(&out.stdout).contains("divergence"));

    // Malformed input is exit 2 in *both* operand positions. The second
    // position is the regression this test pins: a parse failure there
    // must not fall through to the divergence code.
    let dir = scratch("journal_diff");
    let malformed = dir.join("broken.journal.jsonl");
    let mut bytes = std::fs::read_to_string(&valid_a).unwrap();
    bytes.truncate(bytes.len() / 2);
    bytes.push_str("\n{not json");
    std::fs::write(&malformed, bytes).unwrap();
    let malformed = malformed.to_string_lossy().into_owned();

    let out = chamtrace(&["journal", "diff", &malformed, &valid_a]);
    assert_eq!(code(&out), 2, "malformed FIRST file must exit 2");
    let out = chamtrace(&["journal", "diff", &valid_a, &malformed]);
    assert_eq!(code(&out), 2, "malformed SECOND file must exit 2, not 1");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error"),
        "parse failure goes to stderr"
    );

    // A missing file is malformed input too, in either position.
    let gone = dir.join("nope.jsonl").to_string_lossy().into_owned();
    assert_eq!(code(&chamtrace(&["journal", "diff", &gone, &valid_a])), 2);
    assert_eq!(code(&chamtrace(&["journal", "diff", &valid_a, &gone])), 2);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn matrix_expand_lists_the_cross_product() {
    let plan = repo_path("plans/ci_smoke.plan.json");
    let out = chamtrace(&["matrix", "expand", &plan.to_string_lossy()]);
    assert_eq!(code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let ids: Vec<&str> = stdout.lines().collect();
    assert_eq!(ids.len(), 4, "2 workloads x 2 seeds");
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "canonical ID order");
    // Malformed plans are usage errors.
    let out = chamtrace(&["matrix", "expand", "/nonexistent.plan.json"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn matrix_run_and_diff_gate_round_trip() {
    let plan = repo_path("plans/ci_smoke.plan.json");
    let baseline = fixture("matrix_smoke.baseline.json");
    let dir = scratch("matrix_gate");

    // Run the committed smoke plan: all trials pass (exit 0).
    let out = chamtrace(&[
        "matrix",
        "run",
        &plan.to_string_lossy(),
        "--jobs",
        "2",
        "--out",
        &dir.to_string_lossy(),
    ]);
    assert_eq!(
        code(&out),
        0,
        "smoke plan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let results = dir.join("ci-smoke/results.json");
    assert!(results.exists(), "run writes the canonical table");
    assert!(dir.join("ci-smoke/timings.json").exists());

    // Gate against the committed baseline: identical, exit 0.
    let out = chamtrace(&["matrix", "diff", &baseline, &results.to_string_lossy()]);
    assert_eq!(
        code(&out),
        0,
        "fresh run diverged from the committed baseline: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("identical"));

    // Tamper with one determinism field: exit 1, naming trial + metric.
    let text = std::fs::read_to_string(&results).unwrap();
    let tampered_text = text.replacen("\"trace_digest\": \"0x", "\"trace_digest\": \"0y", 1);
    assert_ne!(text, tampered_text, "fixture contains a trace digest");
    let tampered = dir.join("tampered.json");
    std::fs::write(&tampered, tampered_text).unwrap();
    let out = chamtrace(&["matrix", "diff", &baseline, &tampered.to_string_lossy()]);
    assert_eq!(code(&out), 1, "tampered digest must trip the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace_digest"), "metric named: {stdout}");
    assert!(stdout.contains("trial "), "trial named: {stdout}");

    // Garbage operands are exit 2, in either position.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{]").unwrap();
    let garbage = garbage.to_string_lossy().into_owned();
    assert_eq!(
        code(&chamtrace(&[
            "matrix",
            "diff",
            &garbage,
            &results.to_string_lossy()
        ])),
        2
    );
    assert_eq!(
        code(&chamtrace(&["matrix", "diff", &baseline, &garbage])),
        2
    );
    let _ = std::fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------
// `chamtrace push` exit-code contract and the kill -9 crash harness
// ---------------------------------------------------------------------

/// `chamtrace push` exit codes, pinned: 0 every receipt landed; 1 the
/// daemon rejected the upload (retrying cannot help); 2 transport failed
/// after the retry budget (daemon down — retrying later may help). Both
/// failure modes name the attempt count / last error on stderr.
#[test]
fn push_exit_code_contract() {
    let dir = scratch("push_codes");
    let server = chamserve::Server::start(
        "127.0.0.1:0",
        chamserve::ServeConfig {
            data_dir: dir.join("data"),
            threads: 2,
            ..chamserve::ServeConfig::default()
        },
    )
    .expect("daemon starts");
    let addr = server.addr().to_string();
    let journal = fixture("bt4_chameleon.journal.jsonl");

    // 0: the receipt lands and is printed.
    let out = chamtrace(&["push", &addr, "ok-run", &journal]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"ok\":true"));

    // 1: the daemon rejects malformed input with 400 — a semantic
    // failure the client must not retry into.
    let malformed = dir.join("broken.journal.jsonl");
    std::fs::write(&malformed, "{not a journal\n").unwrap();
    let out = chamtrace(&["push", &addr, "bad-run", malformed.to_str().unwrap()]);
    assert_eq!(code(&out), 1);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error: push journal"), "{err}");
    assert!(err.contains("rejected: HTTP 400"), "{err}");
    server.shutdown();

    // 2: nobody listening — transport fails after the retry budget,
    // and stderr says how many attempts were burned.
    let out = chamtrace(&["push", &addr, "down-run", &journal, "--retries", "2"]);
    assert_eq!(code(&out), 2);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("transport failed after 2 attempt(s)"), "{err}");
}

/// Spawn `chamtrace serve` as a real child process on an ephemeral port,
/// returning the child and the bound address parsed from its stdout.
fn spawn_serve(data: &Path, faults: Option<&str>) -> (std::process::Child, String) {
    use std::io::BufRead;
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_chamtrace"));
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--data"])
        .arg(data)
        .args(["--threads", "2"]);
    if let Some(spec) = faults {
        cmd.args(["--faults", spec]);
    }
    let mut child = cmd
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut line = String::new();
    std::io::BufReader::new(child.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut line)
        .expect("daemon announces its port");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected daemon banner {line:?}"))
        .to_string();
    (child, addr)
}

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let (status, body) =
        chamserve::http::request(addr, "GET", path, &[], std::time::Duration::from_secs(10))
            .expect("GET");
    (status, String::from_utf8(body).expect("UTF-8"))
}

/// The full crash drill against the real binary: a committed run, then
/// `kill -9` while a second ingest is parked (via the seeded fault
/// plan's stall) in the exact window between its artifact write and its
/// manifest commit. The restarted daemon must quarantine the
/// uncommitted artifact and serve the committed run byte-identical to
/// the goldens — the same fixtures the serve integration suite pins.
#[test]
fn kill_nine_mid_ingest_recovers_committed_runs() {
    let data = scratch("kill9");
    let journal = fixture("bt4_chameleon.journal.jsonl");
    let golden = std::fs::read_to_string(repo_path("tests/fixtures/serve/bt4_summarize.json"))
        .expect("committed serve golden");

    // Phase 1: a clean daemon commits run `alpha`, then stops cleanly.
    let (mut first, addr) = spawn_serve(&data, None);
    let out = chamtrace(&["push", &addr, "alpha", &journal]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    let (status, before) = http_get(&addr, "/runs/alpha/summarize");
    assert_eq!(status, 200);
    assert_eq!(before, golden, "pre-crash bytes match the golden");
    chamserve::http::request(
        &addr,
        "POST",
        "/shutdown",
        &[],
        std::time::Duration::from_secs(10),
    )
    .expect("shutdown");
    first.wait().expect("clean daemon exits");

    // Phase 2: restart with the fault plan stalling ingest #0 between
    // artifact write and manifest commit, push run `victim` into that
    // window, and shoot the daemon with SIGKILL while it is parked.
    let (mut second, addr) = spawn_serve(&data, Some("stall_ingest=0,stall_ms=600000"));
    let pusher = Command::new(env!("CARGO_BIN_EXE_chamtrace"))
        .args(["push", &addr, "victim", &journal, "--retries", "1"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("pusher spawns");
    let spilled = data.join("runs/victim/journal.jsonl");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !spilled.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "victim artifact never reached the stall window"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    second.kill().expect("SIGKILL lands"); // kill -9: no destructors run
    second.wait().expect("killed daemon reaped");
    let out = pusher.wait_with_output().expect("pusher exits");
    assert_eq!(
        out.status.code(),
        Some(2),
        "push through a crash is a transport failure: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Phase 3: restart clean on the same data dir. The uncommitted
    // victim artifact is quarantined (it was never manifest-committed),
    // and alpha's bytes survive the crash exactly.
    let (mut third, addr) = spawn_serve(&data, None);
    let (status, after) = http_get(&addr, "/runs/alpha/summarize");
    assert_eq!(status, 200, "{after}");
    assert_eq!(after, golden, "post-crash bytes drifted from the golden");
    let (status, _) = http_get(&addr, "/runs/victim/summarize");
    assert_eq!(status, 404, "the half-ingested run must not resurrect");
    let (_, m) = http_get(&addr, "/metrics");
    assert!(m.contains("\"orphaned\":1"), "quarantine ledger: {m}");
    assert!(
        data.join("quarantine/victim/journal.jsonl").exists(),
        "the condemned artifact is moved aside, not deleted"
    );
    chamserve::http::request(
        &addr,
        "POST",
        "/shutdown",
        &[],
        std::time::Duration::from_secs(10),
    )
    .expect("shutdown");
    third.wait().expect("third daemon exits");
}
