//! Exit-code contract of the `chamtrace` binary.
//!
//! The documented contract (see the binary's header): exit 0 on success /
//! identity, 1 on a *semantic* divergence or failed trial, 2 on usage
//! errors and malformed input. The subtle case this suite pins: `journal
//! diff` must exit 2 — not the divergence code 1 — when *either* operand
//! fails to parse, including the second one (a malformed second file is a
//! broken input, not evidence of divergence).
//!
//! The matrix subcommands are covered end to end: `matrix run` on the
//! committed smoke plan, then `matrix diff` against the committed
//! baseline (exit 0), against a tampered table (exit 1, naming trial and
//! metric), and against garbage (exit 2).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn chamtrace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chamtrace"))
        .args(args)
        .output()
        .expect("chamtrace spawns")
}

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn fixture(name: &str) -> String {
    repo_path("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// Fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cham_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("chamtrace exits, not killed")
}

#[test]
fn no_args_is_usage_error() {
    let out = chamtrace(&[]);
    assert_eq!(code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn journal_diff_exit_codes() {
    let valid_a = fixture("bt4_chameleon.journal.jsonl");
    let valid_b = fixture("bt4_chameleon_nosnap.journal.jsonl");

    // Identity: 0.
    let out = chamtrace(&["journal", "diff", &valid_a, &valid_a]);
    assert_eq!(code(&out), 0, "self-diff must exit 0");
    assert!(String::from_utf8_lossy(&out.stdout).contains("identical"));

    // Two valid journals that differ: 1, with the divergence named.
    let out = chamtrace(&["journal", "diff", &valid_a, &valid_b]);
    assert_eq!(code(&out), 1, "semantic divergence must exit 1");
    assert!(String::from_utf8_lossy(&out.stdout).contains("divergence"));

    // Malformed input is exit 2 in *both* operand positions. The second
    // position is the regression this test pins: a parse failure there
    // must not fall through to the divergence code.
    let dir = scratch("journal_diff");
    let malformed = dir.join("broken.journal.jsonl");
    let mut bytes = std::fs::read_to_string(&valid_a).unwrap();
    bytes.truncate(bytes.len() / 2);
    bytes.push_str("\n{not json");
    std::fs::write(&malformed, bytes).unwrap();
    let malformed = malformed.to_string_lossy().into_owned();

    let out = chamtrace(&["journal", "diff", &malformed, &valid_a]);
    assert_eq!(code(&out), 2, "malformed FIRST file must exit 2");
    let out = chamtrace(&["journal", "diff", &valid_a, &malformed]);
    assert_eq!(code(&out), 2, "malformed SECOND file must exit 2, not 1");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error"),
        "parse failure goes to stderr"
    );

    // A missing file is malformed input too, in either position.
    let gone = dir.join("nope.jsonl").to_string_lossy().into_owned();
    assert_eq!(code(&chamtrace(&["journal", "diff", &gone, &valid_a])), 2);
    assert_eq!(code(&chamtrace(&["journal", "diff", &valid_a, &gone])), 2);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn matrix_expand_lists_the_cross_product() {
    let plan = repo_path("plans/ci_smoke.plan.json");
    let out = chamtrace(&["matrix", "expand", &plan.to_string_lossy()]);
    assert_eq!(code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let ids: Vec<&str> = stdout.lines().collect();
    assert_eq!(ids.len(), 4, "2 workloads x 2 seeds");
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "canonical ID order");
    // Malformed plans are usage errors.
    let out = chamtrace(&["matrix", "expand", "/nonexistent.plan.json"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn matrix_run_and_diff_gate_round_trip() {
    let plan = repo_path("plans/ci_smoke.plan.json");
    let baseline = fixture("matrix_smoke.baseline.json");
    let dir = scratch("matrix_gate");

    // Run the committed smoke plan: all trials pass (exit 0).
    let out = chamtrace(&[
        "matrix",
        "run",
        &plan.to_string_lossy(),
        "--jobs",
        "2",
        "--out",
        &dir.to_string_lossy(),
    ]);
    assert_eq!(
        code(&out),
        0,
        "smoke plan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let results = dir.join("ci-smoke/results.json");
    assert!(results.exists(), "run writes the canonical table");
    assert!(dir.join("ci-smoke/timings.json").exists());

    // Gate against the committed baseline: identical, exit 0.
    let out = chamtrace(&["matrix", "diff", &baseline, &results.to_string_lossy()]);
    assert_eq!(
        code(&out),
        0,
        "fresh run diverged from the committed baseline: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("identical"));

    // Tamper with one determinism field: exit 1, naming trial + metric.
    let text = std::fs::read_to_string(&results).unwrap();
    let tampered_text = text.replacen("\"trace_digest\": \"0x", "\"trace_digest\": \"0y", 1);
    assert_ne!(text, tampered_text, "fixture contains a trace digest");
    let tampered = dir.join("tampered.json");
    std::fs::write(&tampered, tampered_text).unwrap();
    let out = chamtrace(&["matrix", "diff", &baseline, &tampered.to_string_lossy()]);
    assert_eq!(code(&out), 1, "tampered digest must trip the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace_digest"), "metric named: {stdout}");
    assert!(stdout.contains("trial "), "trial named: {stdout}");

    // Garbage operands are exit 2, in either position.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{]").unwrap();
    let garbage = garbage.to_string_lossy().into_owned();
    assert_eq!(
        code(&chamtrace(&[
            "matrix",
            "diff",
            &garbage,
            &results.to_string_lossy()
        ])),
        2
    );
    assert_eq!(
        code(&chamtrace(&["matrix", "diff", &baseline, &garbage])),
        2
    );
    let _ = std::fs::remove_dir_all(dir);
}
