//! The multi-tenant session store: many runs, bounded memory.
//!
//! One long-lived daemon holds state for many concurrent runs, so the
//! store is built around three rules:
//!
//! - **Sharded**: run IDs hash onto a fixed array of mutex-guarded
//!   shards, so unrelated runs never contend on one lock. Everything
//!   user-visible (the `/runs` listing, aggregate gauges) is produced in
//!   run-ID order regardless of sharding, so responses stay
//!   byte-deterministic under any ingest interleaving.
//! - **Bounded memory**: the full journal is *spilled to disk* on ingest
//!   (canonical bytes, so re-reads round-trip exactly); what stays hot
//!   per session is fixed-size — the merged [`MetricSet`] sketch (journal
//!   snapshot counters plus every checkpoint's undrained sketch, folded
//!   with the plane's associative merge) and a few scalars. Decoded
//!   journals live in a shared LRU cache with a configurable entry cap.
//! - **Strict ingest**: uploads go through the same parsers the CLI
//!   uses — `RunJournal::from_jsonl` with line diagnostics, CKPT1's total
//!   decoder with offset/CRC diagnostics. A malformed upload is rejected
//!   *before* any session state is touched.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use chameleon::Checkpoint;
use obs::metrics::{Counter, HistId, MetricSet, HIST_DIGEST_STRIDE};
use obs::query::journal_digest;
use obs::{EventKind, RunJournal};

use crate::telemetry::{SvcCounter, Telemetry};

/// Number of shards run IDs hash onto.
const SHARDS: usize = 16;

/// Why a store operation failed, with the HTTP status that describes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// HTTP status class of the failure (400, 404, 500).
    pub status: u16,
    /// Diagnostic detail (parser line/offset messages travel verbatim).
    pub detail: String,
}

impl StoreError {
    fn bad(detail: impl Into<String>) -> Self {
        StoreError {
            status: 400,
            detail: detail.into(),
        }
    }

    fn not_found(detail: impl Into<String>) -> Self {
        StoreError {
            status: 404,
            detail: detail.into(),
        }
    }

    fn io(detail: impl Into<String>) -> Self {
        StoreError {
            status: 500,
            detail: detail.into(),
        }
    }
}

/// Validate a run ID for use as both a map key and a directory name:
/// 1–64 bytes of `[A-Za-z0-9._-]`, not starting with `.` or `-`.
pub fn validate_run_id(id: &str) -> Result<(), StoreError> {
    if id.is_empty() || id.len() > 64 {
        return Err(StoreError::bad(format!(
            "run id must be 1..=64 bytes, got {}",
            id.len()
        )));
    }
    if id.starts_with('.') || id.starts_with('-') {
        return Err(StoreError::bad(format!(
            "run id {id:?} may not start with '.' or '-'"
        )));
    }
    if let Some(c) = id
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(StoreError::bad(format!(
            "run id {id:?} contains invalid character {c:?}"
        )));
    }
    Ok(())
}

/// Fixed-size hot state for one run.
#[derive(Debug, Clone, Default)]
pub struct Session {
    /// World size from the ingested journal (0 until one arrives).
    pub ranks: usize,
    /// The journal's armed flag.
    pub armed: bool,
    /// Total events in the ingested journal.
    pub events: u64,
    /// `snapshot` events folded into the sketch.
    pub snapshots: u64,
    /// FNV-64 of the canonical journal bytes, if a journal is present.
    pub journal_digest: Option<u64>,
    /// Counter totals summed from the journal's snapshot deltas.
    pub journal_ctrs: [u64; Counter::COUNT],
    /// Per-histogram peak digest folded over the journal's snapshot
    /// deltas: `count` slots sum, the `p50`/`p99`/`max` slots keep the
    /// per-marker *peak* (quantiles of deltas cannot be re-aggregated
    /// exactly from digests, so the store reports the honest bound).
    pub snapshot_hist_peaks: [u64; HistId::COUNT * HIST_DIGEST_STRIDE],
    /// Merged sketch from every ingested checkpoint (associative merge).
    pub ckpt_sketch: MetricSet,
    /// Rank contributions carried by the merged checkpoint sketches.
    pub ckpt_ranks: u64,
    /// Markers of ingested checkpoints, ascending, deduplicated.
    pub ckpt_markers: Vec<u64>,
}

impl Session {
    /// Whether a journal has been ingested for this run.
    pub fn has_journal(&self) -> bool {
        self.journal_digest.is_some()
    }
}

#[derive(Default)]
struct Shard {
    runs: BTreeMap<String, Session>,
}

struct JournalCache {
    cap: usize,
    tick: u64,
    entries: BTreeMap<String, (u64, Arc<RunJournal>)>,
}

/// The sharded, disk-backed session store.
pub struct SessionStore {
    shards: Vec<Mutex<Shard>>,
    cache: Mutex<JournalCache>,
    data_dir: PathBuf,
}

impl SessionStore {
    /// Open (or create) a store rooted at `data_dir`, rehydrating hot
    /// state from any runs a previous daemon spilled there. `cache_cap`
    /// bounds the decoded-journal cache in entries (0 disables caching).
    pub fn open(data_dir: &Path, cache_cap: usize) -> Result<SessionStore, StoreError> {
        let runs_dir = data_dir.join("runs");
        std::fs::create_dir_all(&runs_dir)
            .map_err(|e| StoreError::io(format!("create {}: {e}", runs_dir.display())))?;
        let store = SessionStore {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            cache: Mutex::new(JournalCache {
                cap: cache_cap,
                tick: 0,
                entries: BTreeMap::new(),
            }),
            data_dir: data_dir.to_path_buf(),
        };
        store.rehydrate(&runs_dir);
        Ok(store)
    }

    /// Rebuild sessions from spilled artifacts. Malformed leftovers are
    /// skipped with a warning — a daemon must come up even if a previous
    /// one died mid-write.
    fn rehydrate(&self, runs_dir: &Path) {
        let Ok(entries) = std::fs::read_dir(runs_dir) else {
            return;
        };
        let mut ids: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|id| validate_run_id(id).is_ok())
            .collect();
        ids.sort_unstable();
        for id in ids {
            let dir = runs_dir.join(&id);
            let journal_path = dir.join("journal.jsonl");
            if journal_path.is_file() {
                match std::fs::read_to_string(&journal_path) {
                    Ok(text) => {
                        if let Err(e) = self.ingest_journal(&id, &text) {
                            eprintln!("chamserve: skipping spilled journal for {id}: {}", e.detail);
                        }
                    }
                    Err(e) => eprintln!("chamserve: cannot read {}: {e}", journal_path.display()),
                }
            }
            let Ok(blobs) = std::fs::read_dir(&dir) else {
                continue;
            };
            let mut ckpts: Vec<PathBuf> = blobs
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".bin"))
                })
                .collect();
            ckpts.sort();
            for p in ckpts {
                match std::fs::read(&p) {
                    Ok(bytes) => {
                        if let Err(e) = self.ingest_checkpoint(&id, &bytes) {
                            eprintln!(
                                "chamserve: skipping spilled checkpoint {}: {}",
                                p.display(),
                                e.detail
                            );
                        }
                    }
                    Err(e) => eprintln!("chamserve: cannot read {}: {e}", p.display()),
                }
            }
        }
    }

    fn shard_of(&self, id: &str) -> &Mutex<Shard> {
        &self.shards[(obs::query::fnv64(id.as_bytes()) as usize) % SHARDS]
    }

    fn run_dir(&self, id: &str) -> PathBuf {
        self.data_dir.join("runs").join(id)
    }

    /// Ingest one journal upload: strict parse, spill canonical bytes,
    /// fold the snapshot deltas into the session sketch, refresh the
    /// cache. Returns `(ranks, events)` of the accepted journal. A
    /// malformed body leaves every layer untouched.
    pub fn ingest_journal(&self, id: &str, text: &str) -> Result<(usize, u64), StoreError> {
        validate_run_id(id)?;
        let journal = RunJournal::from_jsonl(text).map_err(|e| StoreError::bad(format!("{e}")))?;

        let dir = self.run_dir(id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create {}: {e}", dir.display())))?;
        let canonical = journal.to_jsonl();
        std::fs::write(dir.join("journal.jsonl"), &canonical)
            .map_err(|e| StoreError::io(format!("spill journal: {e}")))?;

        let digest = journal_digest(&journal);
        let events = journal.events().count() as u64;
        let ranks = journal.ranks;
        let armed = journal.armed;
        let mut ctrs = [0u64; Counter::COUNT];
        let mut hist_peaks = [0u64; HistId::COUNT * HIST_DIGEST_STRIDE];
        let mut snapshots = 0u64;
        for (_, e) in journal.events() {
            if let EventKind::Snapshot {
                ctrs: c, hists: h, ..
            } = &e.kind
            {
                snapshots += 1;
                for (slot, v) in ctrs.iter_mut().zip(c.iter()) {
                    *slot = slot.saturating_add(*v);
                }
                for (i, (slot, v)) in hist_peaks.iter_mut().zip(h.iter()).enumerate() {
                    if i % HIST_DIGEST_STRIDE == 0 {
                        *slot = slot.saturating_add(*v); // count slots sum
                    } else {
                        *slot = (*slot).max(*v); // quantile/max slots peak
                    }
                }
            }
        }

        let journal = Arc::new(journal);
        {
            let mut shard = self.shard_of(id).lock().expect("shard lock");
            let session = shard.runs.entry(id.to_string()).or_default();
            session.ranks = ranks;
            session.armed = armed;
            session.events = events;
            session.snapshots = snapshots;
            session.journal_digest = Some(digest);
            session.journal_ctrs = ctrs;
            session.snapshot_hist_peaks = hist_peaks;
        }
        self.cache_insert(id, journal, None);
        Ok((ranks, events))
    }

    /// Ingest one checkpoint upload: total CKPT1 decode, spill the blob,
    /// merge its metric sketch (deduplicated by marker — re-pushing the
    /// same checkpoint is idempotent). Returns the checkpoint's marker.
    pub fn ingest_checkpoint(&self, id: &str, bytes: &[u8]) -> Result<u64, StoreError> {
        validate_run_id(id)?;
        let ckpt = Checkpoint::decode(bytes).map_err(|e| StoreError::bad(format!("{e}")))?;

        let dir = self.run_dir(id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create {}: {e}", dir.display())))?;
        std::fs::write(dir.join(format!("ckpt-{}.bin", ckpt.marker)), bytes)
            .map_err(|e| StoreError::io(format!("spill checkpoint: {e}")))?;

        let mut shard = self.shard_of(id).lock().expect("shard lock");
        let session = shard.runs.entry(id.to_string()).or_default();
        if session.ckpt_markers.contains(&ckpt.marker) {
            return Ok(ckpt.marker);
        }
        session.ckpt_markers.push(ckpt.marker);
        session.ckpt_markers.sort_unstable();
        if !ckpt.metrics.is_empty() {
            let (set, ranks) = MetricSet::decode_with_count(&ckpt.metrics)
                .map_err(|e| StoreError::bad(format!("checkpoint metric payload: {e}")))?;
            session.ckpt_sketch.merge(&set);
            session.ckpt_ranks = session.ckpt_ranks.saturating_add(ranks);
        }
        Ok(ckpt.marker)
    }

    /// Snapshot of one session's hot state.
    pub fn session(&self, id: &str) -> Option<Session> {
        self.shard_of(id)
            .lock()
            .expect("shard lock")
            .runs
            .get(id)
            .cloned()
    }

    /// All sessions in run-ID order (ID, hot state) — sharding never
    /// leaks into the observable order.
    pub fn sessions(&self) -> Vec<(String, Session)> {
        let mut out: Vec<(String, Session)> = Vec::new();
        for shard in &self.shards {
            let g = shard.lock().expect("shard lock");
            out.extend(g.runs.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of live sessions.
    pub fn sessions_live(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").runs.len())
            .sum()
    }

    /// Number of decoded journals currently cached.
    pub fn cached_journals(&self) -> usize {
        self.cache.lock().expect("cache lock").entries.len()
    }

    /// The decoded journal for a run: cache hit, or re-read of the
    /// spilled canonical bytes on miss. Telemetry (when provided) counts
    /// the hit/miss/eviction.
    pub fn journal(
        &self,
        id: &str,
        telemetry: Option<&Telemetry>,
    ) -> Result<Arc<RunJournal>, StoreError> {
        validate_run_id(id)?;
        let known = self
            .session(id)
            .ok_or_else(|| StoreError::not_found(format!("unknown run {id:?}")))?;
        if !known.has_journal() {
            return Err(StoreError::not_found(format!(
                "run {id:?} has checkpoints but no journal"
            )));
        }
        {
            let mut cache = self.cache.lock().expect("cache lock");
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.entries.get_mut(id) {
                entry.0 = tick;
                if let Some(t) = telemetry {
                    t.add(SvcCounter::CacheHits, 1);
                }
                return Ok(entry.1.clone());
            }
        }
        if let Some(t) = telemetry {
            t.add(SvcCounter::CacheMisses, 1);
        }
        let path = self.run_dir(id).join("journal.jsonl");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| StoreError::io(format!("read spilled journal: {e}")))?;
        let journal = RunJournal::from_jsonl(&text)
            .map_err(|e| StoreError::io(format!("spilled journal corrupt: {e}")))?;
        let journal = Arc::new(journal);
        self.cache_insert(id, journal.clone(), telemetry);
        Ok(journal)
    }

    fn cache_insert(&self, id: &str, journal: Arc<RunJournal>, telemetry: Option<&Telemetry>) {
        let mut cache = self.cache.lock().expect("cache lock");
        if cache.cap == 0 {
            return;
        }
        cache.tick += 1;
        let tick = cache.tick;
        cache.entries.insert(id.to_string(), (tick, journal));
        while cache.entries.len() > cache.cap {
            let victim = cache
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
                .expect("non-empty cache");
            cache.entries.remove(&victim);
            if let Some(t) = telemetry {
                t.add(SvcCounter::CacheEvictions, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{Event, RankLog};

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chamserve_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mini_journal(marker: u64) -> RunJournal {
        let mut log = RankLog::new(0);
        log.events.push(Event {
            seq: 0,
            vt: 0.0,
            tt: 0.0,
            kind: EventKind::Marker { n: marker },
        });
        let mut m = MetricSet::new();
        m.add(Counter::Merges, marker);
        log.events.push(Event {
            seq: 1,
            vt: 1e-6,
            tt: 1e-7,
            kind: EventKind::Snapshot {
                marker,
                ranks: 2,
                ctrs: m.counter_values(),
                hists: m.hist_digest(),
            },
        });
        RunJournal::gather(2, false, vec![log])
    }

    #[test]
    fn run_id_validation_rejects_path_tricks() {
        for ok in ["bt4", "run_01", "a.b-c", "X"] {
            assert!(validate_run_id(ok).is_ok(), "{ok}");
        }
        for bad in ["", "..", ".hidden", "-flag", "a/b", "a\\b", "a b", "ü"] {
            assert!(validate_run_id(bad).is_err(), "{bad:?}");
        }
        assert!(validate_run_id(&"x".repeat(65)).is_err());
    }

    #[test]
    fn malformed_journal_leaves_no_session() {
        let dir = tmp("badj");
        let store = SessionStore::open(&dir, 4).unwrap();
        let err = store.ingest_journal("r1", "not a journal").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.detail.contains("journal line"), "{}", err.detail);
        assert_eq!(store.sessions_live(), 0);
        assert!(!dir.join("runs/r1/journal.jsonl").exists());
    }

    #[test]
    fn ingest_spills_and_sketches() {
        let dir = tmp("spill");
        let store = SessionStore::open(&dir, 4).unwrap();
        let j = mini_journal(3);
        store.ingest_journal("r1", &j.to_jsonl()).unwrap();
        let s = store.session("r1").unwrap();
        assert_eq!(s.ranks, 2);
        assert_eq!(s.snapshots, 1);
        assert_eq!(s.journal_ctrs[Counter::Merges as usize], 3);
        assert!(s.has_journal());
        assert!(dir.join("runs/r1/journal.jsonl").is_file());
        // Served journal equals what was pushed.
        let back = store.journal("r1", None).unwrap();
        assert_eq!(*back, j);
    }

    #[test]
    fn lru_cache_evicts_oldest_and_counts() {
        let dir = tmp("lru");
        let store = SessionStore::open(&dir, 2).unwrap();
        let t = Telemetry::new();
        for (i, id) in ["a", "b", "c"].iter().enumerate() {
            store
                .ingest_journal(id, &mini_journal(i as u64 + 1).to_jsonl())
                .unwrap();
        }
        // Cap 2: ingesting a,b,c evicted a.
        assert_eq!(store.cached_journals(), 2);
        store.journal("a", Some(&t)).unwrap(); // miss, re-decode, evicts b
        store.journal("a", Some(&t)).unwrap(); // hit
        assert_eq!(t.get(SvcCounter::CacheMisses), 1);
        assert_eq!(t.get(SvcCounter::CacheHits), 1);
        assert!(t.get(SvcCounter::CacheEvictions) >= 1);
    }

    #[test]
    fn rehydration_rebuilds_sessions() {
        let dir = tmp("rehydrate");
        {
            let store = SessionStore::open(&dir, 4).unwrap();
            store
                .ingest_journal("r1", &mini_journal(2).to_jsonl())
                .unwrap();
        }
        let store = SessionStore::open(&dir, 4).unwrap();
        let s = store.session("r1").expect("rehydrated");
        assert_eq!(s.journal_ctrs[Counter::Merges as usize], 2);
        assert_eq!(store.sessions_live(), 1);
    }
}
