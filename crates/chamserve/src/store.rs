//! The multi-tenant session store: many runs, bounded memory, crash-safe
//! spill.
//!
//! One long-lived daemon holds state for many concurrent runs, so the
//! store is built around four rules:
//!
//! - **Sharded**: run IDs hash onto a fixed array of mutex-guarded
//!   shards, so unrelated runs never contend on one lock. Everything
//!   user-visible (the `/runs` listing, aggregate gauges) is produced in
//!   run-ID order regardless of sharding, so responses stay
//!   byte-deterministic under any ingest interleaving.
//! - **Durable**: every spill is write-to-temp → fsync → rename →
//!   parent-dir fsync, and a per-session CRC-stamped `MANIFEST` records
//!   which artifacts are *committed*. A crash (or `kill -9`) mid-write
//!   leaves a torn `.tmp` or an uncommitted artifact — never a half-new
//!   `journal.jsonl` the next daemon would trust. Rehydration believes
//!   only manifest-committed files whose length and CRC-32 check out;
//!   everything else is moved to `<data>/quarantine/<run>/` with a typed
//!   [`QuarantineReason`], counted in `GET /metrics`, and the daemon
//!   comes up serving every healthy session.
//! - **Bounded memory**: journals are spilled to disk on ingest
//!   (canonical bytes, so re-reads round-trip exactly); the fixed-size
//!   per-session hot state (counter sums, sketch digests) is itself
//!   evictable — idle sessions demote to a cold stub and rehydrate from
//!   their manifest-backed spill on demand. Decoded journals live in a
//!   shared LRU cache with a configurable entry cap.
//! - **Strict, idempotent ingest**: uploads go through the same parsers
//!   the CLI uses; a malformed body is rejected *before* any session
//!   state is touched. Accepted bodies are deduplicated by content
//!   digest `(crc32, len)` — a retried duplicate upload is a cheap 200
//!   re-emitting the original receipt, which is what makes the client's
//!   retry-after-ambiguous-failure loop safe.
//!
//! Degraded mode: a write failing with ENOSPC (real or injected by the
//! [`SvcFaultPlan`]) flips the store **read-only** — ingest answers 503
//! until restart, queries keep serving.
//!
//! Crash-consistency caveat: artifacts are committed under stable names,
//! so the one window where a crash costs committed data is *overwriting*
//! a committed `journal.jsonl` with different bytes (kill between rename
//! and manifest re-stamp quarantines the replacement). First pushes and
//! duplicate re-pushes (deduped, no write) are fully safe; checkpoint
//! blobs are immutable per marker.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use chameleon::Checkpoint;
use obs::metrics::{Counter, HistId, MetricSet, HIST_DIGEST_STRIDE};
use obs::query::journal_digest;
use obs::{EventKind, RunJournal};

use crate::fault::SvcFaultPlan;
use crate::telemetry::{SvcCounter, Telemetry};
use crate::util::{atomic_write, crc32, TMP_SUFFIX};

/// Number of shards run IDs hash onto.
const SHARDS: usize = 16;

/// The per-session manifest file naming the committed artifacts.
pub const MANIFEST: &str = "MANIFEST";

/// First line of every manifest — versioned so a future format bump can
/// tell an old manifest from a garbled one.
const MANIFEST_MAGIC: &str = "chamserve-manifest-v1";

/// Why a store operation failed, with the HTTP status that describes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// HTTP status class of the failure (400, 404, 500, 503).
    pub status: u16,
    /// Diagnostic detail (parser line/offset messages travel verbatim).
    pub detail: String,
}

impl StoreError {
    fn bad(detail: impl Into<String>) -> Self {
        StoreError {
            status: 400,
            detail: detail.into(),
        }
    }

    fn not_found(detail: impl Into<String>) -> Self {
        StoreError {
            status: 404,
            detail: detail.into(),
        }
    }

    fn io(detail: impl Into<String>) -> Self {
        StoreError {
            status: 500,
            detail: detail.into(),
        }
    }

    fn unavailable(detail: impl Into<String>) -> Self {
        StoreError {
            status: 503,
            detail: detail.into(),
        }
    }
}

/// Validate a run ID for use as both a map key and a directory name:
/// 1–64 bytes of `[A-Za-z0-9._-]`, not starting with `.` or `-`.
pub fn validate_run_id(id: &str) -> Result<(), StoreError> {
    if id.is_empty() || id.len() > 64 {
        return Err(StoreError::bad(format!(
            "run id must be 1..=64 bytes, got {}",
            id.len()
        )));
    }
    if id.starts_with('.') || id.starts_with('-') {
        return Err(StoreError::bad(format!(
            "run id {id:?} may not start with '.' or '-'"
        )));
    }
    if let Some(c) = id
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(StoreError::bad(format!(
            "run id {id:?} contains invalid character {c:?}"
        )));
    }
    Ok(())
}

/// Why a spilled file was quarantined instead of trusted at rehydration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// A leftover `.tmp` staging file, or a manifest-committed artifact
    /// whose on-disk length disagrees with the manifest (truncated or
    /// zero-byte) — the signature of a write cut short.
    Torn,
    /// Length matches the manifest but the CRC-32 does not (bit rot or a
    /// flipped sector), or CRC-clean bytes that fail structured decoding.
    Corrupt,
    /// A well-formed filename the manifest never committed — an ingest
    /// that died between artifact rename and manifest stamp (a missing
    /// manifest commits nothing, so everything under it is orphaned).
    Orphaned,
    /// The session's `MANIFEST` itself is garbled; nothing in that
    /// directory can be trusted.
    BadManifest,
}

impl QuarantineReason {
    /// Stable label, used in logs and the `/metrics` quarantine object.
    pub fn label(self) -> &'static str {
        match self {
            QuarantineReason::Torn => "torn",
            QuarantineReason::Corrupt => "corrupt",
            QuarantineReason::Orphaned => "orphaned",
            QuarantineReason::BadManifest => "bad_manifest",
        }
    }
}

/// One quarantined artifact: which run, which file, why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// The run whose directory held the artifact.
    pub run: String,
    /// The artifact's file name.
    pub file: String,
    /// The typed reason.
    pub reason: QuarantineReason,
}

/// Quarantine totals by reason, rendered into `GET /metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuarantineCounts {
    /// [`QuarantineReason::Torn`] artifacts.
    pub torn: u64,
    /// [`QuarantineReason::Corrupt`] artifacts.
    pub corrupt: u64,
    /// [`QuarantineReason::Orphaned`] artifacts.
    pub orphaned: u64,
    /// [`QuarantineReason::BadManifest`] artifacts.
    pub bad_manifest: u64,
}

impl QuarantineCounts {
    /// Sum over all reasons.
    pub fn total(&self) -> u64 {
        self.torn + self.corrupt + self.orphaned + self.bad_manifest
    }
}

/// The committed-artifact table of one session: file name → (CRC-32,
/// length). Canonical text, rewritten whole on every commit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Manifest {
    entries: BTreeMap<String, (u32, u64)>,
}

impl Manifest {
    fn parse(text: &str) -> Result<Manifest, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_MAGIC) => {}
            other => return Err(format!("bad manifest magic {other:?}")),
        }
        let mut entries = BTreeMap::new();
        for (i, line) in lines.enumerate() {
            let mut parts = line.split(' ');
            let (Some(name), Some(crc), Some(len), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("manifest line {}: expected 3 fields", i + 2));
            };
            let crc = crc
                .strip_prefix("crc32=")
                .and_then(|v| u32::from_str_radix(v, 16).ok())
                .ok_or_else(|| format!("manifest line {}: bad crc field {crc:?}", i + 2))?;
            let len = len
                .strip_prefix("len=")
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("manifest line {}: bad len field {len:?}", i + 2))?;
            if name.is_empty() || name.contains('/') {
                return Err(format!("manifest line {}: bad name {name:?}", i + 2));
            }
            entries.insert(name.to_string(), (crc, len));
        }
        Ok(Manifest { entries })
    }

    fn render(&self) -> String {
        let mut out = String::from(MANIFEST_MAGIC);
        out.push('\n');
        for (name, (crc, len)) in &self.entries {
            out.push_str(&format!("{name} crc32={crc:08x} len={len}\n"));
        }
        out
    }
}

/// Receipt for an accepted journal upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalReceipt {
    /// World size of the accepted journal.
    pub ranks: usize,
    /// Event count of the accepted journal.
    pub events: u64,
    /// Whether this upload was a content-digest duplicate of an already
    /// committed body (no disk or parse work was done).
    pub deduped: bool,
}

/// Receipt for an accepted checkpoint upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptReceipt {
    /// The checkpoint's marker.
    pub marker: u64,
    /// Whether this upload was a content-digest duplicate.
    pub deduped: bool,
}

/// Fixed-size hot state for one run.
#[derive(Debug, Clone, Default)]
pub struct Session {
    /// World size from the ingested journal (0 until one arrives).
    pub ranks: usize,
    /// The journal's armed flag.
    pub armed: bool,
    /// Total events in the ingested journal.
    pub events: u64,
    /// `snapshot` events folded into the sketch.
    pub snapshots: u64,
    /// FNV-64 of the canonical journal bytes, if a journal is present.
    pub journal_digest: Option<u64>,
    /// `(crc32, len)` of the committed journal body, for content-digest
    /// dedupe of retried uploads.
    pub journal_body: Option<(u32, u64)>,
    /// Counter totals summed from the journal's snapshot deltas.
    pub journal_ctrs: [u64; Counter::COUNT],
    /// Per-histogram peak digest folded over the journal's snapshot
    /// deltas: `count` slots sum, the `p50`/`p99`/`max` slots keep the
    /// per-marker *peak* (quantiles of deltas cannot be re-aggregated
    /// exactly from digests, so the store reports the honest bound).
    pub snapshot_hist_peaks: [u64; HistId::COUNT * HIST_DIGEST_STRIDE],
    /// Merged sketch from every ingested checkpoint (associative merge).
    pub ckpt_sketch: MetricSet,
    /// Rank contributions carried by the merged checkpoint sketches.
    pub ckpt_ranks: u64,
    /// Markers of ingested checkpoints, ascending, deduplicated.
    pub ckpt_markers: Vec<u64>,
    /// `(crc32, len, marker)` of every committed checkpoint body, for
    /// content-digest dedupe.
    pub ckpt_digests: Vec<(u32, u64, u64)>,
}

impl Session {
    /// Whether a journal has been ingested for this run.
    pub fn has_journal(&self) -> bool {
        self.journal_digest.is_some()
    }

    /// Fold one parsed journal into the session's journal-side state.
    fn install_journal(&mut self, journal: &RunJournal, body: (u32, u64)) {
        self.ranks = journal.ranks;
        self.armed = journal.armed;
        self.events = journal.events().count() as u64;
        self.journal_digest = Some(journal_digest(journal));
        self.journal_body = Some(body);
        let mut ctrs = [0u64; Counter::COUNT];
        let mut hist_peaks = [0u64; HistId::COUNT * HIST_DIGEST_STRIDE];
        let mut snapshots = 0u64;
        for (_, e) in journal.events() {
            if let EventKind::Snapshot {
                ctrs: c, hists: h, ..
            } = &e.kind
            {
                snapshots += 1;
                for (slot, v) in ctrs.iter_mut().zip(c.iter()) {
                    *slot = slot.saturating_add(*v);
                }
                for (i, (slot, v)) in hist_peaks.iter_mut().zip(h.iter()).enumerate() {
                    if i % HIST_DIGEST_STRIDE == 0 {
                        *slot = slot.saturating_add(*v); // count slots sum
                    } else {
                        *slot = (*slot).max(*v); // quantile/max slots peak
                    }
                }
            }
        }
        self.snapshots = snapshots;
        self.journal_ctrs = ctrs;
        self.snapshot_hist_peaks = hist_peaks;
    }

    /// Fold one decoded checkpoint into the session (idempotent per
    /// marker). Returns an error only for a malformed metric payload.
    fn install_ckpt(&mut self, ckpt: &Checkpoint, body: (u32, u64)) -> Result<(), StoreError> {
        if self.ckpt_markers.contains(&ckpt.marker) {
            return Ok(());
        }
        if !ckpt.metrics.is_empty() {
            let (set, ranks) = MetricSet::decode_with_count(&ckpt.metrics)
                .map_err(|e| StoreError::bad(format!("checkpoint metric payload: {e}")))?;
            self.ckpt_sketch.merge(&set);
            self.ckpt_ranks = self.ckpt_ranks.saturating_add(ranks);
        }
        self.ckpt_markers.push(ckpt.marker);
        self.ckpt_markers.sort_unstable();
        self.ckpt_digests.push((body.0, body.1, ckpt.marker));
        Ok(())
    }
}

/// A session slot: hot state resident, or demoted to a cold stub whose
/// state lives entirely in the manifest-backed spill.
#[derive(Default)]
enum Slot {
    Hot(Box<Session>),
    #[default]
    Cold,
}

#[derive(Default)]
struct Shard {
    runs: BTreeMap<String, Slot>,
}

struct JournalCache {
    cap: usize,
    tick: u64,
    entries: BTreeMap<String, (u64, Arc<RunJournal>)>,
}

struct HotLru {
    cap: usize,
    tick: u64,
    ticks: BTreeMap<String, u64>,
}

/// The sharded, disk-backed, crash-safe session store.
pub struct SessionStore {
    shards: Vec<Mutex<Shard>>,
    cache: Mutex<JournalCache>,
    hot: Mutex<HotLru>,
    quarantine: Mutex<Vec<QuarantineRecord>>,
    read_only: AtomicBool,
    faults: Option<SvcFaultPlan>,
    spill_nonce: AtomicU64,
    spill_bytes: AtomicU64,
    ingest_nonce: AtomicU64,
    data_dir: PathBuf,
}

impl SessionStore {
    /// Open (or create) a store rooted at `data_dir`, rehydrating session
    /// stubs from any runs a previous daemon spilled there (hot state
    /// loads lazily on first access). `cache_cap` bounds the
    /// decoded-journal cache in entries (0 disables caching).
    pub fn open(data_dir: &Path, cache_cap: usize) -> Result<SessionStore, StoreError> {
        SessionStore::open_with(data_dir, cache_cap, usize::MAX, None)
    }

    /// [`SessionStore::open`] with the full configuration: `hot_cap`
    /// bounds how many sessions keep hot state resident, `faults` arms a
    /// service fault plan on the spill path.
    pub fn open_with(
        data_dir: &Path,
        cache_cap: usize,
        hot_cap: usize,
        faults: Option<SvcFaultPlan>,
    ) -> Result<SessionStore, StoreError> {
        let runs_dir = data_dir.join("runs");
        std::fs::create_dir_all(&runs_dir)
            .map_err(|e| StoreError::io(format!("create {}: {e}", runs_dir.display())))?;
        let store = SessionStore {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            cache: Mutex::new(JournalCache {
                cap: cache_cap,
                tick: 0,
                entries: BTreeMap::new(),
            }),
            hot: Mutex::new(HotLru {
                cap: hot_cap.max(1),
                tick: 0,
                ticks: BTreeMap::new(),
            }),
            quarantine: Mutex::new(Vec::new()),
            read_only: AtomicBool::new(false),
            faults,
            spill_nonce: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            ingest_nonce: AtomicU64::new(0),
            data_dir: data_dir.to_path_buf(),
        };
        store.rehydrate(&runs_dir);
        Ok(store)
    }

    // -----------------------------------------------------------------
    // Rehydration: trust the manifest, quarantine everything else
    // -----------------------------------------------------------------

    /// Scan every run directory: quarantine torn/orphaned/corrupt files
    /// and register a cold session stub for each run with at least one
    /// committed artifact. The daemon comes up serving every healthy
    /// session no matter what a dying predecessor left behind.
    fn rehydrate(&self, runs_dir: &Path) {
        let Ok(entries) = std::fs::read_dir(runs_dir) else {
            return;
        };
        let mut ids: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|id| validate_run_id(id).is_ok())
            .collect();
        ids.sort_unstable();
        for id in ids {
            let committed = self.rehydrate_session(runs_dir, &id);
            if committed > 0 {
                let mut shard = self.shard_of(&id).lock().expect("shard lock");
                shard.runs.insert(id.clone(), Slot::Cold);
            } else {
                // Nothing committed survives: drop the (now empty) dir so
                // the session does not resurrect as an empty shell.
                let _ = std::fs::remove_dir_all(runs_dir.join(&id));
            }
        }
    }

    /// Audit one run directory against its manifest. Returns how many
    /// committed artifacts survived.
    fn rehydrate_session(&self, runs_dir: &Path, id: &str) -> usize {
        let dir = runs_dir.join(id);
        let files: Vec<String> = match std::fs::read_dir(&dir) {
            Ok(entries) => {
                let mut v: Vec<String> = entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().is_file())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect();
                v.sort_unstable();
                v
            }
            Err(_) => return 0,
        };
        if files.is_empty() {
            return 0;
        }
        let manifest = match std::fs::read_to_string(dir.join(MANIFEST)) {
            Ok(text) => match Manifest::parse(&text) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("chamserve: run {id}: garbled manifest ({e}); quarantining");
                    for f in &files {
                        self.quarantine_file(id, &dir, f, QuarantineReason::BadManifest);
                    }
                    return 0;
                }
            },
            // No manifest = nothing was ever committed: leftover `.tmp`
            // files are torn, everything else is an orphan. The empty
            // manifest below classifies them exactly that way.
            Err(_) => Manifest::default(),
        };
        let mut survivors = Manifest::default();
        for name in &files {
            if name == MANIFEST {
                continue;
            }
            if name.ends_with(TMP_SUFFIX) {
                self.quarantine_file(id, &dir, name, QuarantineReason::Torn);
                continue;
            }
            let Some(&(want_crc, want_len)) = manifest.entries.get(name) else {
                self.quarantine_file(id, &dir, name, QuarantineReason::Orphaned);
                continue;
            };
            let bytes = match std::fs::read(dir.join(name)) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("chamserve: run {id}: cannot read {name}: {e}");
                    self.quarantine_file(id, &dir, name, QuarantineReason::Torn);
                    continue;
                }
            };
            if bytes.len() as u64 != want_len {
                self.quarantine_file(id, &dir, name, QuarantineReason::Torn);
                continue;
            }
            if crc32(&bytes) != want_crc {
                self.quarantine_file(id, &dir, name, QuarantineReason::Corrupt);
                continue;
            }
            survivors.entries.insert(name.clone(), (want_crc, want_len));
        }
        // Manifest entries whose file vanished are recorded (nothing to
        // move) so the loss is visible in /metrics.
        for name in manifest.entries.keys() {
            if !files.contains(name) {
                eprintln!("chamserve: run {id}: committed {name} is missing");
                self.record_quarantine(id, name, QuarantineReason::Torn);
            }
        }
        let n = survivors.entries.len();
        if survivors != manifest {
            // Re-stamp the manifest to exactly the surviving set (or drop
            // it when nothing survived).
            if n == 0 {
                let _ = std::fs::remove_file(dir.join(MANIFEST));
            } else if let Err(e) =
                atomic_write(&dir.join(MANIFEST), survivors.render().as_bytes(), None)
            {
                eprintln!("chamserve: run {id}: cannot re-stamp manifest: {e}");
            }
        }
        n
    }

    /// Move one suspect file into `<data>/quarantine/<run>/` and record
    /// the typed reason.
    fn quarantine_file(&self, id: &str, dir: &Path, name: &str, reason: QuarantineReason) {
        let qdir = self.data_dir.join("quarantine").join(id);
        let _ = std::fs::create_dir_all(&qdir);
        let mut dest = qdir.join(name);
        let mut n = 0u32;
        while dest.exists() {
            n += 1;
            dest = qdir.join(format!("{name}.{n}"));
        }
        if let Err(e) = std::fs::rename(dir.join(name), &dest) {
            eprintln!(
                "chamserve: cannot quarantine {}: {e}",
                dir.join(name).display()
            );
        }
        eprintln!("chamserve: quarantined {id}/{name} ({})", reason.label());
        self.record_quarantine(id, name, reason);
    }

    fn record_quarantine(&self, id: &str, name: &str, reason: QuarantineReason) {
        self.quarantine
            .lock()
            .expect("quarantine lock")
            .push(QuarantineRecord {
                run: id.to_string(),
                file: name.to_string(),
                reason,
            });
    }

    /// Every quarantine record, in occurrence order.
    pub fn quarantined(&self) -> Vec<QuarantineRecord> {
        self.quarantine.lock().expect("quarantine lock").clone()
    }

    /// Quarantine totals by reason, for `GET /metrics`.
    pub fn quarantine_counts(&self) -> QuarantineCounts {
        let mut c = QuarantineCounts::default();
        for r in self.quarantine.lock().expect("quarantine lock").iter() {
            match r.reason {
                QuarantineReason::Torn => c.torn += 1,
                QuarantineReason::Corrupt => c.corrupt += 1,
                QuarantineReason::Orphaned => c.orphaned += 1,
                QuarantineReason::BadManifest => c.bad_manifest += 1,
            }
        }
        c
    }

    /// Whether the store has degraded to read-only (disk full).
    pub fn read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    /// The directory this store spills into.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    // -----------------------------------------------------------------
    // Durable spill plumbing
    // -----------------------------------------------------------------

    fn shard_of(&self, id: &str) -> &Mutex<Shard> {
        &self.shards[(obs::query::fnv64(id.as_bytes()) as usize) % SHARDS]
    }

    fn run_dir(&self, id: &str) -> PathBuf {
        self.data_dir.join("runs").join(id)
    }

    /// One durable artifact write, with the fault plan's torn-write and
    /// ENOSPC injections applied. A write that fails with ENOSPC (real or
    /// injected) flips the store read-only.
    fn spill(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let nonce = self.spill_nonce.fetch_add(1, Ordering::SeqCst);
        if let Some(plan) = &self.faults {
            if let Some(cap) = plan.enospc_after_bytes {
                let written = self.spill_bytes.load(Ordering::SeqCst);
                if written.saturating_add(bytes.len() as u64) > cap {
                    self.read_only.store(true, Ordering::SeqCst);
                    return Err(StoreError::unavailable(
                        "store is read-only: injected ENOSPC (no space left on device)",
                    ));
                }
            }
            if let Some(tear_at) = plan.torn_write(nonce, bytes.len()) {
                let hook = move |f: &mut std::fs::File, b: &[u8]| -> std::io::Result<()> {
                    use std::io::Write;
                    f.write_all(&b[..tear_at])?;
                    Err(std::io::Error::other(format!(
                        "injected torn write at byte {tear_at}"
                    )))
                };
                return match atomic_write(path, bytes, Some(&hook)) {
                    Ok(()) => unreachable!("torn hook always errors"),
                    Err(e) => Err(StoreError::io(format!("spill {}: {e}", path.display()))),
                };
            }
        }
        match atomic_write(path, bytes, None) {
            Ok(()) => {
                self.spill_bytes
                    .fetch_add(bytes.len() as u64, Ordering::SeqCst);
                Ok(())
            }
            Err(e) => {
                if e.raw_os_error() == Some(28) {
                    // ENOSPC: degrade to read-only instead of erroring
                    // every future ingest with a 500.
                    self.read_only.store(true, Ordering::SeqCst);
                    return Err(StoreError::unavailable(format!("store is read-only: {e}")));
                }
                Err(StoreError::io(format!("spill {}: {e}", path.display())))
            }
        }
    }

    /// Stamp `name` into the session's manifest (read-modify-write, both
    /// writes atomic). Call with the session's shard lock held.
    fn commit_artifact(
        &self,
        dir: &Path,
        name: &str,
        crc: u32,
        len: u64,
    ) -> Result<(), StoreError> {
        let path = dir.join(MANIFEST);
        let mut manifest = match std::fs::read_to_string(&path) {
            Ok(text) => Manifest::parse(&text)
                .map_err(|e| StoreError::io(format!("manifest unreadable: {e}")))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Manifest::default(),
            Err(e) => return Err(StoreError::io(format!("read manifest: {e}"))),
        };
        manifest.entries.insert(name.to_string(), (crc, len));
        self.spill(&path, manifest.render().as_bytes())
    }

    /// The fault plan's kill-`-9` window: park between artifact write and
    /// manifest commit when this ingest's nonce matches the stall point.
    fn maybe_stall(&self, nonce: u64) {
        if let Some(plan) = &self.faults {
            if plan.stall_ingest == Some(nonce) {
                eprintln!(
                    "chamserve: fault plan stalling ingest {nonce} for {} ms",
                    plan.stall_ms
                );
                std::thread::sleep(std::time::Duration::from_millis(plan.stall_ms));
            }
        }
    }

    // -----------------------------------------------------------------
    // Hot-state residency: demand rehydration + LRU eviction
    // -----------------------------------------------------------------

    /// Rebuild one session's hot state purely from its manifest-backed
    /// spill. Strict: any mismatch is a 500 (rehydration at open() is the
    /// layer that quarantines; a file rotting *while* the daemon runs is
    /// an I/O error, not a policy decision).
    fn load_session_from_disk(&self, id: &str) -> Result<Session, StoreError> {
        let dir = self.run_dir(id);
        let text = std::fs::read_to_string(dir.join(MANIFEST))
            .map_err(|e| StoreError::io(format!("read manifest: {e}")))?;
        let manifest =
            Manifest::parse(&text).map_err(|e| StoreError::io(format!("manifest: {e}")))?;
        let mut session = Session::default();
        for (name, &(crc, len)) in &manifest.entries {
            let bytes = std::fs::read(dir.join(name))
                .map_err(|e| StoreError::io(format!("read {name}: {e}")))?;
            if bytes.len() as u64 != len || crc32(&bytes) != crc {
                return Err(StoreError::io(format!(
                    "spilled {name} no longer matches its manifest stamp"
                )));
            }
            if name == "journal.jsonl" {
                let text = std::str::from_utf8(&bytes)
                    .map_err(|_| StoreError::io("spilled journal is not UTF-8".to_string()))?;
                let journal = RunJournal::from_jsonl(text)
                    .map_err(|e| StoreError::io(format!("spilled journal corrupt: {e}")))?;
                session.install_journal(&journal, (crc, len));
            } else if name.starts_with("ckpt-") && name.ends_with(".bin") {
                let ckpt = Checkpoint::decode(&bytes)
                    .map_err(|e| StoreError::io(format!("spilled {name} corrupt: {e}")))?;
                session.install_ckpt(&ckpt, (crc, len))?;
            }
        }
        Ok(session)
    }

    /// Get-or-rehydrate the hot session in a locked shard. Counts the
    /// demand rehydration when the slot was cold.
    fn hot_entry<'a>(
        &self,
        shard: &'a mut Shard,
        id: &str,
        telemetry: Option<&Telemetry>,
    ) -> Result<Option<&'a mut Session>, StoreError> {
        match shard.runs.get(id) {
            None => return Ok(None),
            Some(Slot::Hot(_)) => {}
            Some(Slot::Cold) => {
                let session = self.load_session_from_disk(id)?;
                shard
                    .runs
                    .insert(id.to_string(), Slot::Hot(Box::new(session)));
                if let Some(t) = telemetry {
                    t.add(SvcCounter::SessionRehydrations, 1);
                }
            }
        }
        match shard.runs.get_mut(id) {
            Some(Slot::Hot(s)) => Ok(Some(s)),
            _ => unreachable!("slot just made hot"),
        }
    }

    /// Mark `id` most-recently-used and demote the least-recently-used
    /// hot session beyond the cap to a cold stub (its state is already on
    /// disk behind the manifest).
    fn touch_hot(&self, id: &str, telemetry: Option<&Telemetry>) {
        let victim = {
            let mut hot = self.hot.lock().expect("hot lock");
            hot.tick += 1;
            let tick = hot.tick;
            hot.ticks.insert(id.to_string(), tick);
            if hot.ticks.len() > hot.cap {
                let victim = hot
                    .ticks
                    .iter()
                    .filter(|(k, _)| k.as_str() != id)
                    .min_by_key(|(_, t)| **t)
                    .map(|(k, _)| k.clone());
                if let Some(v) = &victim {
                    hot.ticks.remove(v);
                }
                victim
            } else {
                None
            }
        };
        if let Some(victim) = victim {
            let mut shard = self.shard_of(&victim).lock().expect("shard lock");
            if let Some(slot) = shard.runs.get_mut(&victim) {
                if matches!(slot, Slot::Hot(_)) {
                    *slot = Slot::Cold;
                    if let Some(t) = telemetry {
                        t.add(SvcCounter::SessionEvictions, 1);
                    }
                }
            }
        }
    }

    /// Number of sessions whose hot state is currently resident.
    pub fn hot_sessions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("shard lock")
                    .runs
                    .values()
                    .filter(|slot| matches!(slot, Slot::Hot(_)))
                    .count()
            })
            .sum()
    }

    // -----------------------------------------------------------------
    // Ingest
    // -----------------------------------------------------------------

    /// Ingest one journal upload: strict parse, durable spill + manifest
    /// commit, fold the snapshot deltas into the session sketch, refresh
    /// the cache. A malformed body leaves every layer untouched; a
    /// content-digest duplicate of the committed body is answered from
    /// hot state without touching disk.
    pub fn ingest_journal(
        &self,
        id: &str,
        text: &str,
        telemetry: Option<&Telemetry>,
    ) -> Result<JournalReceipt, StoreError> {
        validate_run_id(id)?;
        if self.read_only() {
            return Err(StoreError::unavailable(
                "store is read-only (disk full); retry later",
            ));
        }
        let body = (crc32(text.as_bytes()), text.len() as u64);

        // Dedupe before parsing: a retried duplicate is a cheap 200.
        {
            let mut shard = self.shard_of(id).lock().expect("shard lock");
            if let Some(session) = self.hot_entry(&mut shard, id, telemetry)? {
                if session.journal_body == Some(body) {
                    let receipt = JournalReceipt {
                        ranks: session.ranks,
                        events: session.events,
                        deduped: true,
                    };
                    drop(shard);
                    self.touch_hot(id, telemetry);
                    return Ok(receipt);
                }
            }
        }

        let journal = RunJournal::from_jsonl(text).map_err(|e| StoreError::bad(format!("{e}")))?;
        let canonical = journal.to_jsonl();
        let canonical_body = (crc32(canonical.as_bytes()), canonical.len() as u64);

        let dir = self.run_dir(id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create {}: {e}", dir.display())))?;
        let nonce = self.ingest_nonce.fetch_add(1, Ordering::SeqCst);

        let receipt;
        {
            let mut shard = self.shard_of(id).lock().expect("shard lock");
            self.spill(&dir.join("journal.jsonl"), canonical.as_bytes())?;
            self.maybe_stall(nonce);
            self.commit_artifact(&dir, "journal.jsonl", canonical_body.0, canonical_body.1)?;
            let session = match shard.runs.entry(id.to_string()).or_default() {
                Slot::Hot(s) => s,
                slot @ Slot::Cold => {
                    // A cold slot here means hot_entry above rehydrated it
                    // and an eviction raced in between; rebuild fresh.
                    *slot = Slot::Hot(Box::new(self.load_session_from_disk(id)?));
                    match slot {
                        Slot::Hot(s) => s,
                        Slot::Cold => unreachable!(),
                    }
                }
            };
            session.install_journal(&journal, canonical_body);
            receipt = JournalReceipt {
                ranks: session.ranks,
                events: session.events,
                deduped: false,
            };
        }
        self.touch_hot(id, telemetry);
        self.cache_insert(id, Arc::new(journal), None);
        Ok(receipt)
    }

    /// Ingest one checkpoint upload: total CKPT1 decode, durable spill +
    /// manifest commit, merge its metric sketch (deduplicated by marker
    /// and by content digest — re-pushing is idempotent and cheap).
    pub fn ingest_checkpoint(
        &self,
        id: &str,
        bytes: &[u8],
        telemetry: Option<&Telemetry>,
    ) -> Result<CkptReceipt, StoreError> {
        validate_run_id(id)?;
        if self.read_only() {
            return Err(StoreError::unavailable(
                "store is read-only (disk full); retry later",
            ));
        }
        let body = (crc32(bytes), bytes.len() as u64);
        {
            let mut shard = self.shard_of(id).lock().expect("shard lock");
            if let Some(session) = self.hot_entry(&mut shard, id, telemetry)? {
                if let Some(&(_, _, marker)) = session
                    .ckpt_digests
                    .iter()
                    .find(|(c, l, _)| (*c, *l) == body)
                {
                    drop(shard);
                    self.touch_hot(id, telemetry);
                    return Ok(CkptReceipt {
                        marker,
                        deduped: true,
                    });
                }
            }
        }

        let ckpt = Checkpoint::decode(bytes).map_err(|e| StoreError::bad(format!("{e}")))?;
        // Validate the metric payload before any disk work, so a bad
        // checkpoint leaves neither an artifact nor a manifest entry.
        if !ckpt.metrics.is_empty() {
            MetricSet::decode_with_count(&ckpt.metrics)
                .map_err(|e| StoreError::bad(format!("checkpoint metric payload: {e}")))?;
        }
        let dir = self.run_dir(id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create {}: {e}", dir.display())))?;
        let name = format!("ckpt-{}.bin", ckpt.marker);
        let nonce = self.ingest_nonce.fetch_add(1, Ordering::SeqCst);

        let receipt;
        {
            let mut shard = self.shard_of(id).lock().expect("shard lock");
            let already = match self.hot_entry(&mut shard, id, telemetry)? {
                Some(session) => session.ckpt_markers.contains(&ckpt.marker),
                None => false,
            };
            if already {
                // Same marker, different bytes: the committed blob is
                // immutable; answer with the marker, change nothing.
                receipt = CkptReceipt {
                    marker: ckpt.marker,
                    deduped: true,
                };
            } else {
                self.spill(&dir.join(&name), bytes)?;
                self.maybe_stall(nonce);
                self.commit_artifact(&dir, &name, body.0, body.1)?;
                let session = match shard.runs.entry(id.to_string()).or_default() {
                    Slot::Hot(s) => s,
                    slot @ Slot::Cold => {
                        *slot = Slot::Hot(Box::new(self.load_session_from_disk(id)?));
                        match slot {
                            Slot::Hot(s) => s,
                            Slot::Cold => unreachable!(),
                        }
                    }
                };
                session.install_ckpt(&ckpt, body)?;
                receipt = CkptReceipt {
                    marker: ckpt.marker,
                    deduped: false,
                };
            }
        }
        self.touch_hot(id, telemetry);
        Ok(receipt)
    }

    // -----------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------

    /// Snapshot of one session's hot state (rehydrating it on demand).
    pub fn session(&self, id: &str) -> Option<Session> {
        self.session_counted(id, None)
    }

    /// [`SessionStore::session`] with telemetry for demand rehydrations.
    pub fn session_counted(&self, id: &str, telemetry: Option<&Telemetry>) -> Option<Session> {
        let out = {
            let mut shard = self.shard_of(id).lock().expect("shard lock");
            match self.hot_entry(&mut shard, id, telemetry) {
                Ok(Some(s)) => Some(s.clone()),
                Ok(None) => None,
                Err(e) => {
                    eprintln!("chamserve: session {id}: {}", e.detail);
                    None
                }
            }
        };
        if out.is_some() {
            self.touch_hot(id, telemetry);
        }
        out
    }

    /// All sessions in run-ID order (ID, hot state) — sharding never
    /// leaks into the observable order. Cold sessions are loaded
    /// transiently without promoting them (a listing should not thrash
    /// the residency set).
    pub fn sessions(&self) -> Vec<(String, Session)> {
        let mut hot: Vec<(String, Session)> = Vec::new();
        let mut cold: Vec<String> = Vec::new();
        for shard in &self.shards {
            let g = shard.lock().expect("shard lock");
            for (k, v) in &g.runs {
                match v {
                    Slot::Hot(s) => hot.push((k.clone(), (**s).clone())),
                    Slot::Cold => cold.push(k.clone()),
                }
            }
        }
        for id in cold {
            match self.load_session_from_disk(&id) {
                Ok(s) => hot.push((id, s)),
                Err(e) => eprintln!("chamserve: listing {id}: {}", e.detail),
            }
        }
        hot.sort_by(|a, b| a.0.cmp(&b.0));
        hot
    }

    /// Number of live sessions (hot or cold).
    pub fn sessions_live(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").runs.len())
            .sum()
    }

    /// Number of decoded journals currently cached.
    pub fn cached_journals(&self) -> usize {
        self.cache.lock().expect("cache lock").entries.len()
    }

    /// The decoded journal for a run: cache hit, or re-read of the
    /// spilled canonical bytes on miss. Telemetry (when provided) counts
    /// the hit/miss/eviction.
    pub fn journal(
        &self,
        id: &str,
        telemetry: Option<&Telemetry>,
    ) -> Result<Arc<RunJournal>, StoreError> {
        validate_run_id(id)?;
        let known = self
            .session_counted(id, telemetry)
            .ok_or_else(|| StoreError::not_found(format!("unknown run {id:?}")))?;
        if !known.has_journal() {
            return Err(StoreError::not_found(format!(
                "run {id:?} has checkpoints but no journal"
            )));
        }
        {
            let mut cache = self.cache.lock().expect("cache lock");
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.entries.get_mut(id) {
                entry.0 = tick;
                if let Some(t) = telemetry {
                    t.add(SvcCounter::CacheHits, 1);
                }
                return Ok(entry.1.clone());
            }
        }
        if let Some(t) = telemetry {
            t.add(SvcCounter::CacheMisses, 1);
        }
        let path = self.run_dir(id).join("journal.jsonl");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| StoreError::io(format!("read spilled journal: {e}")))?;
        let journal = RunJournal::from_jsonl(&text)
            .map_err(|e| StoreError::io(format!("spilled journal corrupt: {e}")))?;
        let journal = Arc::new(journal);
        self.cache_insert(id, journal.clone(), telemetry);
        Ok(journal)
    }

    fn cache_insert(&self, id: &str, journal: Arc<RunJournal>, telemetry: Option<&Telemetry>) {
        let mut cache = self.cache.lock().expect("cache lock");
        if cache.cap == 0 {
            return;
        }
        cache.tick += 1;
        let tick = cache.tick;
        cache.entries.insert(id.to_string(), (tick, journal));
        while cache.entries.len() > cache.cap {
            let victim = cache
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
                .expect("non-empty cache");
            cache.entries.remove(&victim);
            if let Some(t) = telemetry {
                t.add(SvcCounter::CacheEvictions, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{Event, RankLog};

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chamserve_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mini_journal(marker: u64) -> RunJournal {
        let mut log = RankLog::new(0);
        log.events.push(Event {
            seq: 0,
            vt: 0.0,
            tt: 0.0,
            kind: EventKind::Marker { n: marker },
        });
        let mut m = MetricSet::new();
        m.add(Counter::Merges, marker);
        log.events.push(Event {
            seq: 1,
            vt: 1e-6,
            tt: 1e-7,
            kind: EventKind::Snapshot {
                marker,
                ranks: 2,
                ctrs: m.counter_values(),
                hists: m.hist_digest(),
            },
        });
        RunJournal::gather(2, false, vec![log])
    }

    #[test]
    fn run_id_validation_rejects_path_tricks() {
        for ok in ["bt4", "run_01", "a.b-c", "X"] {
            assert!(validate_run_id(ok).is_ok(), "{ok}");
        }
        for bad in ["", "..", ".hidden", "-flag", "a/b", "a\\b", "a b", "ü"] {
            assert!(validate_run_id(bad).is_err(), "{bad:?}");
        }
        assert!(validate_run_id(&"x".repeat(65)).is_err());
    }

    #[test]
    fn manifest_round_trips_and_rejects_garbage() {
        let mut m = Manifest::default();
        m.entries
            .insert("journal.jsonl".to_string(), (0xCBF4_3926, 17));
        m.entries
            .insert("ckpt-3.bin".to_string(), (0xDEAD_BEEF, 99));
        let text = m.render();
        assert!(text.starts_with(MANIFEST_MAGIC));
        assert_eq!(Manifest::parse(&text).unwrap(), m);
        assert!(Manifest::parse("").is_err(), "empty");
        assert!(Manifest::parse("not-the-magic\n").is_err(), "bad magic");
        assert!(
            Manifest::parse("chamserve-manifest-v1\njournal.jsonl nope len=3\n").is_err(),
            "bad crc field"
        );
        assert!(
            Manifest::parse("chamserve-manifest-v1\na/b crc32=00000000 len=1\n").is_err(),
            "path in name"
        );
    }

    #[test]
    fn malformed_journal_leaves_no_session() {
        let dir = tmp("badj");
        let store = SessionStore::open(&dir, 4).unwrap();
        let err = store
            .ingest_journal("r1", "not a journal", None)
            .unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.detail.contains("journal line"), "{}", err.detail);
        assert_eq!(store.sessions_live(), 0);
        assert!(!dir.join("runs/r1/journal.jsonl").exists());
    }

    #[test]
    fn ingest_spills_durably_and_sketches() {
        let dir = tmp("spill");
        let store = SessionStore::open(&dir, 4).unwrap();
        let j = mini_journal(3);
        let r = store.ingest_journal("r1", &j.to_jsonl(), None).unwrap();
        assert!(!r.deduped);
        assert_eq!(r.ranks, 2);
        let s = store.session("r1").unwrap();
        assert_eq!(s.ranks, 2);
        assert_eq!(s.snapshots, 1);
        assert_eq!(s.journal_ctrs[Counter::Merges as usize], 3);
        assert!(s.has_journal());
        assert!(dir.join("runs/r1/journal.jsonl").is_file());
        // The manifest commits the artifact with its true digest.
        let manifest =
            Manifest::parse(&std::fs::read_to_string(dir.join("runs/r1/MANIFEST")).unwrap())
                .unwrap();
        let spilled = std::fs::read(dir.join("runs/r1/journal.jsonl")).unwrap();
        assert_eq!(
            manifest.entries.get("journal.jsonl"),
            Some(&(crc32(&spilled), spilled.len() as u64))
        );
        // No staging leftovers.
        assert!(!dir.join("runs/r1/journal.jsonl.tmp").exists());
        // Served journal equals what was pushed.
        let back = store.journal("r1", None).unwrap();
        assert_eq!(*back, j);
    }

    #[test]
    fn duplicate_uploads_dedupe_by_content_digest() {
        let dir = tmp("dedupe");
        let store = SessionStore::open(&dir, 4).unwrap();
        let jsonl = mini_journal(5).to_jsonl();
        let first = store.ingest_journal("r1", &jsonl, None).unwrap();
        assert!(!first.deduped);
        let again = store.ingest_journal("r1", &jsonl, None).unwrap();
        assert!(again.deduped, "identical body → cheap dedupe");
        assert_eq!((again.ranks, again.events), (first.ranks, first.events));
        // A *different* body for the same run is a real re-ingest.
        let other = store
            .ingest_journal("r1", &mini_journal(6).to_jsonl(), None)
            .unwrap();
        assert!(!other.deduped);
    }

    #[test]
    fn lru_cache_evicts_oldest_and_counts() {
        let dir = tmp("lru");
        let store = SessionStore::open(&dir, 2).unwrap();
        let t = Telemetry::new();
        for (i, id) in ["a", "b", "c"].iter().enumerate() {
            store
                .ingest_journal(id, &mini_journal(i as u64 + 1).to_jsonl(), None)
                .unwrap();
        }
        // Cap 2: ingesting a,b,c evicted a.
        assert_eq!(store.cached_journals(), 2);
        store.journal("a", Some(&t)).unwrap(); // miss, re-decode, evicts b
        store.journal("a", Some(&t)).unwrap(); // hit
        assert_eq!(t.get(SvcCounter::CacheMisses), 1);
        assert_eq!(t.get(SvcCounter::CacheHits), 1);
        assert!(t.get(SvcCounter::CacheEvictions) >= 1);
    }

    #[test]
    fn hot_sessions_evict_and_rehydrate_on_demand() {
        let dir = tmp("hotlru");
        let store = SessionStore::open_with(&dir, 8, 2, None).unwrap();
        let t = Telemetry::new();
        for (i, id) in ["a", "b", "c"].iter().enumerate() {
            store
                .ingest_journal(id, &mini_journal(i as u64 + 1).to_jsonl(), Some(&t))
                .unwrap();
        }
        assert_eq!(store.sessions_live(), 3, "all sessions stay live");
        assert!(store.hot_sessions() <= 2, "residency bounded by the cap");
        assert!(t.get(SvcCounter::SessionEvictions) >= 1);
        // Touching the evicted session rebuilds identical hot state from
        // the manifest-backed spill.
        let a = store.session_counted("a", Some(&t)).expect("a rehydrates");
        assert_eq!(a.journal_ctrs[Counter::Merges as usize], 1);
        assert!(t.get(SvcCounter::SessionRehydrations) >= 1);
        assert!(store.hot_sessions() <= 2, "cap holds after rehydration");
    }

    #[test]
    fn rehydration_rebuilds_sessions() {
        let dir = tmp("rehydrate");
        {
            let store = SessionStore::open(&dir, 4).unwrap();
            store
                .ingest_journal("r1", &mini_journal(2).to_jsonl(), None)
                .unwrap();
        }
        let store = SessionStore::open(&dir, 4).unwrap();
        let s = store.session("r1").expect("rehydrated");
        assert_eq!(s.journal_ctrs[Counter::Merges as usize], 2);
        assert_eq!(store.sessions_live(), 1);
        assert!(store.quarantined().is_empty(), "clean spill, no quarantine");
    }

    #[test]
    fn torn_and_orphaned_files_quarantine_on_open() {
        let dir = tmp("quarantine");
        {
            let store = SessionStore::open(&dir, 4).unwrap();
            store
                .ingest_journal("good", &mini_journal(2).to_jsonl(), None)
                .unwrap();
            store
                .ingest_journal("victim", &mini_journal(3).to_jsonl(), None)
                .unwrap();
        }
        // Simulate a crash mid-write: a torn .tmp in one dir, an
        // uncommitted orphan artifact in another, and truncate the
        // committed journal of `victim`.
        std::fs::write(dir.join("runs/good/ckpt-9.bin.tmp"), b"half a blo").unwrap();
        std::fs::write(dir.join("runs/good/ckpt-4.bin"), b"never committed").unwrap();
        let victim = dir.join("runs/victim/journal.jsonl");
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

        let store = SessionStore::open(&dir, 4).unwrap();
        // good still serves its committed journal; victim lost its only
        // artifact and is gone.
        assert!(store.session("good").unwrap().has_journal());
        assert!(store.session("victim").is_none());
        let counts = store.quarantine_counts();
        assert_eq!(counts.torn, 2, "tmp + truncated: {:?}", store.quarantined());
        assert_eq!(counts.orphaned, 1);
        assert_eq!(counts.total(), 3);
        // Quarantined files moved, not deleted.
        assert!(dir.join("quarantine/good/ckpt-9.bin.tmp").exists());
        assert!(dir.join("quarantine/good/ckpt-4.bin").exists());
        assert!(dir.join("quarantine/victim/journal.jsonl").exists());
        assert!(!dir.join("runs/good/ckpt-4.bin").exists());
    }

    #[test]
    fn injected_enospc_flips_read_only_but_keeps_serving() {
        let dir = tmp("enospc");
        let plan = SvcFaultPlan {
            enospc_after_bytes: Some(1),
            ..SvcFaultPlan::new(1)
        };
        let store = SessionStore::open_with(&dir, 4, usize::MAX, Some(plan)).unwrap();
        let err = store
            .ingest_journal("r1", &mini_journal(1).to_jsonl(), None)
            .unwrap_err();
        assert_eq!(err.status, 503, "{}", err.detail);
        assert!(store.read_only());
        // Ingest stays 503 from the gate; queries still answer.
        let err = store
            .ingest_checkpoint("r1", b"irrelevant", None)
            .unwrap_err();
        assert_eq!(err.status, 503);
        assert!(store.sessions().is_empty());
    }
}
