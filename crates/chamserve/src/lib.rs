//! # chamserve — the multi-tenant trace-service daemon
//!
//! `chamtrace serve` turns the one-process/one-run/one-journal rank-0
//! aggregation into a long-lived service: many concurrent runs push
//! their flight-recorder journals and CKPT1 checkpoints at a daemon,
//! which spills them to disk, keeps bounded hot state per session (the
//! associative [`obs::metrics::MetricSet`] merge plus an LRU cache of
//! decoded journals), and serves the whole `obs::query` engine over a
//! hand-rolled HTTP/1.1 plane on `std::net::TcpListener` — the workspace
//! is hermetic, so there is no hyper, no tokio, no serde; just the
//! standard library and the parsers the CLI already trusts.
//!
//! ## Endpoints
//!
//! | method & path | answer |
//! |---|---|
//! | `POST /runs/<id>/journal` | strict JSONL ingest; 400 + line diagnostic on malformed input |
//! | `POST /runs/<id>/checkpoint` | total CKPT1 decode; 400 + offset/CRC diagnostic |
//! | `GET /runs` | all sessions in run-ID order with their hot sketches |
//! | `GET /runs/<id>/summarize` | [`obs::query::summarize_json`] |
//! | `GET /runs/<id>/timeline/<rank>` | [`obs::query::timeline_json`] |
//! | `GET /runs/<id>/spans` | [`obs::query::spans_json`] |
//! | `GET /runs/<id>/metrics` | [`obs::query::metrics_json`] |
//! | `GET /runs/<id>/anomalies` | [`obs::query::anomalies_json`] |
//! | `GET /runs/<id>/diff/<other>` | [`obs::query::diff_json`] |
//! | `GET /metrics` | the daemon's own telemetry (see below) |
//! | `GET /healthz` | liveness probe |
//! | `POST /shutdown` | graceful stop (used by tests and the CI smoke job) |
//!
//! Query responses are the *same canonical bytes* printed by the
//! `chamtrace journal <query> --json` subcommands — one shared renderer
//! in `obs::query` — so endpoint goldens diff exactly, and CLI-vs-daemon
//! answers can be compared byte for byte.
//!
//! ## The loop closes
//!
//! The daemon watches itself with the observability plane it serves:
//! request counts and latency sketches ride the same `obs::metrics`
//! histogram machinery clients query through it, exposed at
//! `GET /metrics`. See `OBSERVABILITY.md` "Trace service".

pub mod http;
pub mod store;
pub mod telemetry;

mod routes;

pub use routes::{ServeConfig, Server};
pub use store::{validate_run_id, Session, SessionStore, StoreError};
pub use telemetry::{SvcCounter, SvcHist, Telemetry};

use std::time::Duration;

/// Default client timeout for pushes and smoke queries.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Push a finished run's journal at a daemon (`chamtrace push`, the
/// matrix `--push` hook). Returns the daemon's JSON receipt.
pub fn push_journal(addr: &str, run_id: &str, jsonl: &[u8]) -> Result<String, String> {
    push(addr, run_id, "journal", jsonl)
}

/// Push one checkpoint blob at a daemon.
pub fn push_checkpoint(addr: &str, run_id: &str, blob: &[u8]) -> Result<String, String> {
    push(addr, run_id, "checkpoint", blob)
}

fn push(addr: &str, run_id: &str, what: &str, body: &[u8]) -> Result<String, String> {
    let path = format!("/runs/{run_id}/{what}");
    let (status, resp) = http::request(addr, "POST", &path, body, CLIENT_TIMEOUT)?;
    let text = String::from_utf8_lossy(&resp).into_owned();
    if status != 200 {
        return Err(format!("{addr}{path}: HTTP {status}: {}", text.trim_end()));
    }
    Ok(text)
}
