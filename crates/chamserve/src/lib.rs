//! # chamserve — the multi-tenant trace-service daemon
//!
//! `chamtrace serve` turns the one-process/one-run/one-journal rank-0
//! aggregation into a long-lived service: many concurrent runs push
//! their flight-recorder journals and CKPT1 checkpoints at a daemon,
//! which spills them to disk, keeps bounded hot state per session (the
//! associative [`obs::metrics::MetricSet`] merge plus an LRU cache of
//! decoded journals), and serves the whole `obs::query` engine over a
//! hand-rolled HTTP/1.1 plane on `std::net::TcpListener` — the workspace
//! is hermetic, so there is no hyper, no tokio, no serde; just the
//! standard library and the parsers the CLI already trusts.
//!
//! ## Endpoints
//!
//! | method & path | answer |
//! |---|---|
//! | `POST /runs/<id>/journal` | strict JSONL ingest; 400 + line diagnostic on malformed input |
//! | `POST /runs/<id>/checkpoint` | total CKPT1 decode; 400 + offset/CRC diagnostic |
//! | `GET /runs` | all sessions in run-ID order with their hot sketches |
//! | `GET /runs/<id>/summarize` | [`obs::query::summarize_json`] |
//! | `GET /runs/<id>/timeline/<rank>` | [`obs::query::timeline_json`] |
//! | `GET /runs/<id>/spans` | [`obs::query::spans_json`] |
//! | `GET /runs/<id>/metrics` | [`obs::query::metrics_json`] |
//! | `GET /runs/<id>/anomalies` | [`obs::query::anomalies_json`] |
//! | `GET /runs/<id>/diff/<other>` | [`obs::query::diff_json`] |
//! | `GET /metrics` | the daemon's own telemetry (see below) |
//! | `GET /healthz` | liveness probe |
//! | `POST /shutdown` | graceful stop (used by tests and the CI smoke job) |
//!
//! Query responses are the *same canonical bytes* printed by the
//! `chamtrace journal <query> --json` subcommands — one shared renderer
//! in `obs::query` — so endpoint goldens diff exactly, and CLI-vs-daemon
//! answers can be compared byte for byte.
//!
//! ## The loop closes
//!
//! The daemon watches itself with the observability plane it serves:
//! request counts and latency sketches ride the same `obs::metrics`
//! histogram machinery clients query through it, exposed at
//! `GET /metrics`. See `OBSERVABILITY.md` "Trace service".
//!
//! ## Crash safety and degraded modes
//!
//! Every spill is a crash-atomic write (temp + fsync + rename + dir
//! fsync) committed into a per-session CRC-stamped `MANIFEST`;
//! rehydration trusts only manifest-committed artifacts and quarantines
//! torn/orphaned/corrupt files with typed reasons visible in
//! `GET /metrics`. Pushes carry a `Content-Crc32` claim the server
//! verifies before touching session state, retries ride a seeded-jitter
//! exponential backoff ([`RetryPolicy`]), and the store dedupes retried
//! bodies by content digest — so "response lost after commit" converges
//! instead of double-ingesting. A deterministic [`SvcFaultPlan`] can
//! inject torn writes, connection drops, delays, and ENOSPC to prove all
//! of it under test. See `OBSERVABILITY.md` "Durability & degraded
//! modes" and the service rows of `FAULTS.md`.

pub mod fault;
pub mod http;
pub mod retry;
pub mod store;
pub mod telemetry;
pub mod util;

mod routes;

pub use fault::SvcFaultPlan;
pub use retry::{post_with_retry, PushError, RetryPolicy};
pub use routes::{ServeConfig, Server};
pub use store::{
    validate_run_id, QuarantineCounts, QuarantineReason, QuarantineRecord, Session, SessionStore,
    StoreError,
};
pub use telemetry::{SvcCounter, SvcHist, Telemetry};

use std::time::Duration;

/// Default client timeout for pushes and smoke queries.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Push a finished run's journal at a daemon (`chamtrace push`, the
/// matrix `--push` hook) under the default retry policy. Returns the
/// daemon's JSON receipt.
pub fn push_journal(addr: &str, run_id: &str, jsonl: &[u8]) -> Result<String, PushError> {
    push_journal_with(addr, run_id, jsonl, &RetryPolicy::default())
}

/// [`push_journal`] under an explicit retry policy.
pub fn push_journal_with(
    addr: &str,
    run_id: &str,
    jsonl: &[u8],
    policy: &RetryPolicy,
) -> Result<String, PushError> {
    post_with_retry(
        addr,
        &format!("/runs/{run_id}/journal"),
        jsonl,
        policy,
        CLIENT_TIMEOUT,
    )
}

/// Push one checkpoint blob at a daemon under the default retry policy.
pub fn push_checkpoint(addr: &str, run_id: &str, blob: &[u8]) -> Result<String, PushError> {
    push_checkpoint_with(addr, run_id, blob, &RetryPolicy::default())
}

/// [`push_checkpoint`] under an explicit retry policy.
pub fn push_checkpoint_with(
    addr: &str,
    run_id: &str,
    blob: &[u8],
    policy: &RetryPolicy,
) -> Result<String, PushError> {
    post_with_retry(
        addr,
        &format!("/runs/{run_id}/checkpoint"),
        blob,
        policy,
        CLIENT_TIMEOUT,
    )
}
