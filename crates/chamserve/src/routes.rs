//! Request routing and the server lifecycle.
//!
//! A fixed pool of worker threads shares one `TcpListener` (accept is
//! thread-safe across clones); each connection is one request/response
//! exchange. Every response body is canonical — query endpoints return
//! the exact bytes of the shared `obs::query` JSON renderers, so a
//! daemon answer can be byte-diffed against the CLI's `--json` output
//! and against committed goldens.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::metrics::{Counter, HistId, HIST_DIGEST_STRIDE};
use obs::query;

use crate::http::{read_request, write_response, HttpError, Request};
use crate::store::{Session, SessionStore, StoreError};
use crate::telemetry::{SvcCounter, SvcHist, Telemetry};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root directory journals and checkpoints are spilled under.
    pub data_dir: PathBuf,
    /// Decoded-journal cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Worker threads accepting connections.
    pub threads: usize,
    /// Largest request body accepted, in bytes.
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            data_dir: PathBuf::from("experiments_out/chamserve"),
            cache_entries: 64,
            threads: 4,
            max_body: 64 * 1024 * 1024,
        }
    }
}

struct State {
    store: SessionStore,
    telemetry: Telemetry,
    stopping: AtomicBool,
}

/// A running daemon: bound address, worker pool, shutdown control.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// on a pool of worker threads. Returns once the socket is live.
    pub fn start(addr: &str, cfg: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let state = Arc::new(State {
            store: SessionStore::open(&cfg.data_dir, cfg.cache_entries)
                .map_err(|e| format!("open store: {}", e.detail))?,
            telemetry: Telemetry::new(),
            stopping: AtomicBool::new(false),
        });
        let threads = cfg.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let listener = listener
                .try_clone()
                .map_err(|e| format!("clone listener: {e}"))?;
            let state = state.clone();
            let max_body = cfg.max_body;
            workers.push(std::thread::spawn(move || loop {
                let Ok((mut stream, _)) = listener.accept() else {
                    break;
                };
                if state.stopping.load(Ordering::SeqCst) {
                    break;
                }
                handle(&mut stream, &state, max_body, local);
                if state.stopping.load(Ordering::SeqCst) {
                    break;
                }
            }));
        }
        Ok(Server {
            addr: local,
            state,
            workers,
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `POST /shutdown` has been accepted.
    pub fn stopping(&self) -> bool {
        self.state.stopping.load(Ordering::SeqCst)
    }

    /// Block until every worker exits (i.e. until shutdown is
    /// requested). The foreground mode of `chamtrace serve`.
    pub fn wait(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Request shutdown and join the workers.
    pub fn shutdown(self) {
        self.state.stopping.store(true, Ordering::SeqCst);
        wake_workers(self.addr, self.workers.len());
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Unblock workers parked in `accept` by connecting once per worker.
fn wake_workers(addr: SocketAddr, n: usize) {
    for _ in 0..n {
        if let Ok(s) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            drop(s);
        }
    }
}

fn handle(stream: &mut TcpStream, state: &State, max_body: usize, local: SocketAddr) {
    let started = Instant::now();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(30))).ok();
    let (status, content_type, body) = match read_request(stream, max_body) {
        Err(HttpError { status, detail }) => {
            // A bare connect-then-close (the shutdown wake) is not a
            // request; don't count or answer it.
            if detail.contains("connection closed mid-head") {
                return;
            }
            (status, "application/json", error_body(&detail))
        }
        Ok(req) => {
            let is_query = matches!(
                (
                    req.method.as_str(),
                    req.segments.first().map(String::as_str)
                ),
                ("GET", Some("runs"))
            ) && req.segments.len() >= 3;
            let (status, body) = route(&req, state, local);
            if is_query && status == 200 {
                state.telemetry.add(SvcCounter::QueriesServed, 1);
                state
                    .telemetry
                    .observe(SvcHist::ResponseBytes, body.len() as u64);
            }
            (status, "application/json", body)
        }
    };
    state.telemetry.add(SvcCounter::HttpRequests, 1);
    let class = match status {
        200..=299 => SvcCounter::Http2xx,
        400..=499 => SvcCounter::Http4xx,
        _ => SvcCounter::Http5xx,
    };
    state.telemetry.add(class, 1);
    // Latency is recorded *before* the response bytes leave, so a client
    // that has read a response is guaranteed the observation already
    // landed — /metrics scraped right after N answers counts >= N.
    state.telemetry.observe(
        SvcHist::RequestLatencyNs,
        obs::metrics::ns_from_seconds(started.elapsed().as_secs_f64()),
    );
    let _ = write_response(stream, status, content_type, body.as_bytes());
}

fn error_body(detail: &str) -> String {
    format!("{{\"error\":\"{}\"}}\n", query::json_escape(detail))
}

fn store_error(e: &StoreError) -> (u16, String) {
    (e.status, error_body(&e.detail))
}

fn route(req: &Request, state: &State, local: SocketAddr) -> (u16, String) {
    let segs: Vec<&str> = req.segments.iter().map(String::as_str).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", []) => (
            200,
            format!(
                "{{\"service\":\"chamserve\",\"addr\":\"{local}\",\"endpoints\":[\"GET /healthz\",\"GET /metrics\",\"GET /runs\",\"POST /runs/<id>/journal\",\"POST /runs/<id>/checkpoint\",\"GET /runs/<id>/summarize\",\"GET /runs/<id>/timeline/<rank>\",\"GET /runs/<id>/spans\",\"GET /runs/<id>/metrics\",\"GET /runs/<id>/anomalies\",\"GET /runs/<id>/diff/<other>\",\"POST /shutdown\"]}}\n"
            ),
        ),
        ("GET", ["healthz"]) => (200, "{\"ok\":true}\n".to_string()),
        ("GET", ["metrics"]) => (
            200,
            state.telemetry.render(
                state.store.sessions_live(),
                state.store.cached_journals(),
            ),
        ),
        ("GET", ["runs"]) => (200, render_runs(&state.store.sessions())),
        ("POST", ["runs", id, "journal"]) => match std::str::from_utf8(&req.body) {
            Err(_) => {
                state.telemetry.add(SvcCounter::IngestRejected, 1);
                (400, error_body("journal body is not UTF-8"))
            }
            Ok(text) => match state.store.ingest_journal(id, text) {
                Ok((ranks, events)) => {
                    state.telemetry.add(SvcCounter::JournalsIngested, 1);
                    state
                        .telemetry
                        .add(SvcCounter::IngestBytes, req.body.len() as u64);
                    state
                        .telemetry
                        .observe(SvcHist::IngestBodyBytes, req.body.len() as u64);
                    (
                        200,
                        format!(
                            "{{\"ok\":true,\"run\":\"{}\",\"ranks\":{ranks},\"events\":{events}}}\n",
                            query::json_escape(id)
                        ),
                    )
                }
                Err(e) => {
                    if e.status == 400 {
                        state.telemetry.add(SvcCounter::IngestRejected, 1);
                    }
                    store_error(&e)
                }
            },
        },
        ("POST", ["runs", id, "checkpoint"]) => match state.store.ingest_checkpoint(id, &req.body)
        {
            Ok(marker) => {
                state.telemetry.add(SvcCounter::CkptsIngested, 1);
                state
                    .telemetry
                    .add(SvcCounter::IngestBytes, req.body.len() as u64);
                state
                    .telemetry
                    .observe(SvcHist::IngestBodyBytes, req.body.len() as u64);
                (
                    200,
                    format!(
                        "{{\"ok\":true,\"run\":\"{}\",\"marker\":{marker}}}\n",
                        query::json_escape(id)
                    ),
                )
            }
            Err(e) => {
                if e.status == 400 {
                    state.telemetry.add(SvcCounter::IngestRejected, 1);
                }
                store_error(&e)
            }
        },
        ("GET", ["runs", id, "summarize"]) => with_journal(state, id, query::summarize_json),
        ("GET", ["runs", id, "spans"]) => with_journal(state, id, query::spans_json),
        ("GET", ["runs", id, "metrics"]) => with_journal(state, id, query::metrics_json),
        ("GET", ["runs", id, "anomalies"]) => with_journal(state, id, query::anomalies_json),
        ("GET", ["runs", id, "timeline", rank]) => match rank.parse::<usize>() {
            Err(_) => (400, error_body(&format!("invalid rank {rank:?}"))),
            Ok(rank) => match state.store.journal(id, Some(&state.telemetry)) {
                Err(e) => store_error(&e),
                Ok(j) => match query::timeline_json(&j, rank) {
                    Ok(body) => (200, body),
                    Err(e) => (400, error_body(&e)),
                },
            },
        },
        ("GET", ["runs", a, "diff", b]) => {
            match (
                state.store.journal(a, Some(&state.telemetry)),
                state.store.journal(b, Some(&state.telemetry)),
            ) {
                (Ok(ja), Ok(jb)) => (200, query::diff_json(&ja, &jb)),
                (Err(e), _) | (_, Err(e)) => store_error(&e),
            }
        }
        ("POST", ["shutdown"]) => {
            state.stopping.store(true, Ordering::SeqCst);
            // Wake the sibling workers parked in accept; this worker
            // breaks its own loop after the response is flushed.
            wake_workers(local, 8);
            (200, "{\"ok\":true,\"stopping\":true}\n".to_string())
        }
        _ => (
            404,
            error_body(&format!(
                "no route for {} /{}",
                req.method,
                req.segments.join("/")
            )),
        ),
    }
}

fn with_journal(
    state: &State,
    id: &str,
    render: impl FnOnce(&obs::RunJournal) -> String,
) -> (u16, String) {
    match state.store.journal(id, Some(&state.telemetry)) {
        Ok(j) => (200, render(&j)),
        Err(e) => store_error(&e),
    }
}

/// The `/runs` listing: every session in run-ID order with its bounded
/// hot state — merged counter totals (journal snapshots + checkpoint
/// sketches), the checkpoint sketch's exact histogram digest, and the
/// per-marker peak digest from the journal's snapshots.
fn render_runs(sessions: &[(String, Session)]) -> String {
    let mut out = String::from("{\"service\":\"chamserve\",\"runs\":[");
    for (i, (id, s)) in sessions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"ranks\":{},\"armed\":{},\"events\":{},\"snapshots\":{}",
            query::json_escape(id),
            s.ranks,
            s.armed,
            s.events,
            s.snapshots
        ));
        match s.journal_digest {
            Some(d) => out.push_str(&format!(",\"journal_digest\":\"{d:#x}\"")),
            None => out.push_str(",\"journal_digest\":null"),
        }
        let markers: Vec<String> = s.ckpt_markers.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            ",\"ckpt_markers\":[{}],\"ckpt_ranks\":{}",
            markers.join(","),
            s.ckpt_ranks
        ));
        out.push_str(",\"sketch\":{\"ctrs\":{");
        for (k, c) in Counter::ALL.iter().enumerate() {
            let v = s.journal_ctrs[*c as usize].saturating_add(s.ckpt_sketch.get(*c));
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", c.label()));
        }
        out.push_str("},\"snapshot_hist_peaks\":{");
        for (k, h) in HistId::ALL.iter().enumerate() {
            let base = (*h as usize) * HIST_DIGEST_STRIDE;
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                h.label(),
                s.snapshot_hist_peaks[base],
                s.snapshot_hist_peaks[base + 1],
                s.snapshot_hist_peaks[base + 2],
                s.snapshot_hist_peaks[base + 3]
            ));
        }
        out.push_str("},\"ckpt_hists\":{");
        let ckpt_digest = s.ckpt_sketch.hist_digest();
        for (k, h) in HistId::ALL.iter().enumerate() {
            let base = (*h as usize) * HIST_DIGEST_STRIDE;
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                h.label(),
                ckpt_digest[base],
                ckpt_digest[base + 1],
                ckpt_digest[base + 2],
                ckpt_digest[base + 3]
            ));
        }
        out.push_str("}}}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_runs_is_deterministic_and_ordered() {
        let a = Session {
            ranks: 4,
            armed: false,
            events: 10,
            snapshots: 2,
            journal_digest: Some(0xabc),
            ..Session::default()
        };
        let b = Session::default();
        let sessions = vec![("alpha".to_string(), a), ("beta".to_string(), b)];
        let r = render_runs(&sessions);
        assert!(
            r.starts_with("{\"service\":\"chamserve\",\"runs\":["),
            "{r}"
        );
        let ia = r.find("\"id\":\"alpha\"").unwrap();
        let ib = r.find("\"id\":\"beta\"").unwrap();
        assert!(ia < ib, "run-ID order");
        assert!(r.contains("\"journal_digest\":\"0xabc\""), "{r}");
        assert!(r.contains("\"journal_digest\":null"), "{r}");
        assert!(r.ends_with("]}\n"), "{r}");
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(
            error_body("bad \"thing\""),
            "{\"error\":\"bad \\\"thing\\\"\"}\n"
        );
    }
}
