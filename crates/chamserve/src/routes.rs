//! Request routing and the server lifecycle.
//!
//! One acceptor thread feeds a bounded connection queue drained by a
//! fixed pool of worker threads; each connection is one request/response
//! exchange. The bound is the load-shedding valve: when the queue is
//! full the acceptor answers 429 + `retry-after` immediately instead of
//! letting latency grow without bound. Per-phase socket deadlines turn
//! slow-loris clients into 408s, and a store that has degraded to
//! read-only (disk full) turns ingests into 503s while queries keep
//! serving. All three statuses are in the retrying client's retryable
//! set, so well-behaved pushers back off and converge.
//!
//! Every response body is canonical — query endpoints return the exact
//! bytes of the shared `obs::query` JSON renderers, so a daemon answer
//! can be byte-diffed against the CLI's `--json` output and against
//! committed goldens.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::metrics::{Counter, HistId, HIST_DIGEST_STRIDE};
use obs::query;

use crate::fault::SvcFaultPlan;
use crate::http::{read_request_with, write_response_with, HttpError, Request};
use crate::store::{Session, SessionStore, StoreError};
use crate::telemetry::{SvcCounter, SvcHist, Telemetry};
use crate::util::crc32;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root directory journals and checkpoints are spilled under.
    pub data_dir: PathBuf,
    /// Decoded-journal cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Worker threads draining the connection queue.
    pub threads: usize,
    /// Largest request body accepted, in bytes (a larger `Content-Length`
    /// claim is a 413 before any body byte is buffered).
    pub max_body: usize,
    /// Sessions allowed to keep hot state resident; idle sessions beyond
    /// this demote to manifest-backed cold stubs.
    pub hot_sessions: usize,
    /// Connections the queue holds before the acceptor sheds with 429.
    pub backlog: usize,
    /// Socket read deadline while the request head is arriving (slow
    /// header writers get a 408).
    pub header_deadline: Duration,
    /// Socket read deadline per body read (slow body writers get a 408).
    pub body_deadline: Duration,
    /// Deterministic service fault plan (tests and the CI crash leg).
    pub faults: Option<SvcFaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            data_dir: PathBuf::from("experiments_out/chamserve"),
            cache_entries: 64,
            threads: 4,
            max_body: 64 * 1024 * 1024,
            hot_sessions: 256,
            backlog: 128,
            header_deadline: Duration::from_secs(10),
            body_deadline: Duration::from_secs(30),
            faults: None,
        }
    }
}

struct State {
    store: SessionStore,
    telemetry: Telemetry,
    stopping: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_wake: Condvar,
    conn_nonce: AtomicU64,
    faults: Option<SvcFaultPlan>,
}

/// A running daemon: bound address, acceptor + worker pool, shutdown
/// control.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving.
    /// Returns once the socket is live and rehydration has finished.
    pub fn start(addr: &str, cfg: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let state = Arc::new(State {
            store: SessionStore::open_with(
                &cfg.data_dir,
                cfg.cache_entries,
                cfg.hot_sessions,
                cfg.faults.clone(),
            )
            .map_err(|e| format!("open store: {}", e.detail))?,
            telemetry: Telemetry::new(),
            stopping: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_wake: Condvar::new(),
            conn_nonce: AtomicU64::new(0),
            faults: cfg.faults.clone(),
        });
        let mut threads = Vec::with_capacity(cfg.threads.max(1) + 1);
        {
            let state = state.clone();
            let backlog = cfg.backlog.max(1);
            threads.push(std::thread::spawn(move || loop {
                let Ok((mut stream, _)) = listener.accept() else {
                    break;
                };
                if state.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let mut q = state.queue.lock().expect("queue lock");
                if q.len() >= backlog {
                    drop(q);
                    // Shed immediately: a bounded wait beats an unbounded
                    // one, and 429 + retry-after tells the client so.
                    state.telemetry.add(SvcCounter::LoadShed, 1);
                    let _ = write_response_with(
                        &mut stream,
                        429,
                        "application/json",
                        &[("retry-after", "1")],
                        error_body("connection backlog full; retry later").as_bytes(),
                    );
                    continue;
                }
                q.push_back(stream);
                drop(q);
                state.queue_wake.notify_one();
            }));
        }
        for _ in 0..cfg.threads.max(1) {
            let state = state.clone();
            let cfg = cfg.clone();
            threads.push(std::thread::spawn(move || loop {
                let stream = {
                    let mut q = state.queue.lock().expect("queue lock");
                    loop {
                        if let Some(s) = q.pop_front() {
                            break Some(s);
                        }
                        if state.stopping.load(Ordering::SeqCst) {
                            break None;
                        }
                        q = state.queue_wake.wait(q).expect("queue wait");
                    }
                };
                let Some(mut stream) = stream else {
                    break;
                };
                handle(&mut stream, &state, &cfg, local);
            }));
        }
        Ok(Server {
            addr: local,
            state,
            threads,
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `POST /shutdown` has been accepted.
    pub fn stopping(&self) -> bool {
        self.state.stopping.load(Ordering::SeqCst)
    }

    /// The data directory the store spills into.
    pub fn data_dir(&self) -> &std::path::Path {
        self.state.store.data_dir()
    }

    /// Block until every thread exits (i.e. until shutdown is
    /// requested). The foreground mode of `chamtrace serve`.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Request shutdown and join the threads.
    pub fn shutdown(self) {
        self.state.stopping.store(true, Ordering::SeqCst);
        wake_acceptor(self.addr);
        self.state.queue_wake.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Unblock the acceptor parked in `accept` by connecting once.
fn wake_acceptor(addr: SocketAddr) {
    if let Ok(s) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        drop(s);
    }
}

fn handle(stream: &mut TcpStream, state: &State, cfg: &ServeConfig, local: SocketAddr) {
    let started = Instant::now();
    let nonce = state.conn_nonce.fetch_add(1, Ordering::SeqCst);
    if let Some(plan) = &state.faults {
        if plan.drop_pre(nonce) {
            // Injected client-vanished-mid-upload: close before reading.
            return;
        }
    }
    stream.set_read_timeout(Some(cfg.header_deadline)).ok();
    stream.set_write_timeout(Some(cfg.body_deadline)).ok();
    let (status, content_type, body) =
        match read_request_with(stream, cfg.max_body, Some(cfg.body_deadline)) {
            Err(HttpError { status, detail }) => {
                // A bare connect-then-close (the shutdown wake) is not a
                // request; don't count or answer it.
                if detail.contains("connection closed mid-head") {
                    return;
                }
                (status, "application/json", error_body(&detail))
            }
            Ok(req) => match verify_crc(&req) {
                Err(detail) => {
                    state.telemetry.add(SvcCounter::CrcRejected, 1);
                    (422, "application/json", error_body(&detail))
                }
                Ok(()) => {
                    let is_query = matches!(
                        (
                            req.method.as_str(),
                            req.segments.first().map(String::as_str)
                        ),
                        ("GET", Some("runs"))
                    ) && req.segments.len() >= 3;
                    let (status, body) = route(&req, state, local);
                    if is_query && status == 200 {
                        state.telemetry.add(SvcCounter::QueriesServed, 1);
                        state
                            .telemetry
                            .observe(SvcHist::ResponseBytes, body.len() as u64);
                    }
                    (status, "application/json", body)
                }
            },
        };
    state.telemetry.add(SvcCounter::HttpRequests, 1);
    let class = match status {
        200..=299 => SvcCounter::Http2xx,
        400..=499 => SvcCounter::Http4xx,
        _ => SvcCounter::Http5xx,
    };
    state.telemetry.add(class, 1);
    if status == 408 {
        state.telemetry.add(SvcCounter::RequestTimeouts, 1);
    }
    // Latency is recorded *before* the response bytes leave, so a client
    // that has read a response is guaranteed the observation already
    // landed — /metrics scraped right after N answers counts >= N.
    state.telemetry.observe(
        SvcHist::RequestLatencyNs,
        obs::metrics::ns_from_seconds(started.elapsed().as_secs_f64()),
    );
    if let Some(plan) = &state.faults {
        if plan.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(plan.delay_ms));
        }
        if plan.drop_post(nonce) {
            // Injected response-lost-after-commit: the request was fully
            // processed; the client never hears and must retry — which is
            // exactly what the dedupe layer makes safe.
            return;
        }
    }
    // Degraded statuses tell the client when to come back.
    let extra: &[(&str, &str)] = if matches!(status, 429 | 503) {
        &[("retry-after", "1")]
    } else {
        &[]
    };
    let _ = write_response_with(stream, status, content_type, extra, body.as_bytes());
}

/// Verify the client's `Content-Crc32` claim against the body bytes —
/// before the router (and thus any session state) sees the request.
fn verify_crc(req: &Request) -> Result<(), String> {
    match req.crc {
        None => Ok(()),
        Some(claim) => {
            let actual = crc32(&req.body);
            if actual == claim {
                Ok(())
            } else {
                Err(format!(
                    "content-crc32 mismatch: claimed {claim:08x}, body is {actual:08x}"
                ))
            }
        }
    }
}

fn error_body(detail: &str) -> String {
    format!("{{\"error\":\"{}\"}}\n", query::json_escape(detail))
}

fn store_error(e: &StoreError) -> (u16, String) {
    (e.status, error_body(&e.detail))
}

fn route(req: &Request, state: &State, local: SocketAddr) -> (u16, String) {
    let segs: Vec<&str> = req.segments.iter().map(String::as_str).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", []) => (
            200,
            format!(
                "{{\"service\":\"chamserve\",\"addr\":\"{local}\",\"endpoints\":[\"GET /healthz\",\"GET /metrics\",\"GET /runs\",\"POST /runs/<id>/journal\",\"POST /runs/<id>/checkpoint\",\"GET /runs/<id>/summarize\",\"GET /runs/<id>/timeline/<rank>\",\"GET /runs/<id>/spans\",\"GET /runs/<id>/metrics\",\"GET /runs/<id>/anomalies\",\"GET /runs/<id>/diff/<other>\",\"POST /shutdown\"]}}\n"
            ),
        ),
        ("GET", ["healthz"]) => (200, "{\"ok\":true}\n".to_string()),
        ("GET", ["metrics"]) => (
            200,
            state.telemetry.render(
                state.store.sessions_live(),
                state.store.cached_journals(),
                &state.store.quarantine_counts(),
                state.store.read_only(),
            ),
        ),
        ("GET", ["runs"]) => (200, render_runs(&state.store.sessions())),
        ("POST", ["runs", id, "journal"]) => match std::str::from_utf8(&req.body) {
            Err(_) => {
                state.telemetry.add(SvcCounter::IngestRejected, 1);
                (400, error_body("journal body is not UTF-8"))
            }
            Ok(text) => match state.store.ingest_journal(id, text, Some(&state.telemetry)) {
                Ok(r) => {
                    if r.deduped {
                        state.telemetry.add(SvcCounter::IngestDeduped, 1);
                    } else {
                        state.telemetry.add(SvcCounter::JournalsIngested, 1);
                        state
                            .telemetry
                            .add(SvcCounter::IngestBytes, req.body.len() as u64);
                        state
                            .telemetry
                            .observe(SvcHist::IngestBodyBytes, req.body.len() as u64);
                    }
                    (
                        200,
                        format!(
                            "{{\"ok\":true,\"run\":\"{}\",\"ranks\":{},\"events\":{}}}\n",
                            query::json_escape(id),
                            r.ranks,
                            r.events
                        ),
                    )
                }
                Err(e) => ingest_error(state, &e),
            },
        },
        ("POST", ["runs", id, "checkpoint"]) => {
            match state
                .store
                .ingest_checkpoint(id, &req.body, Some(&state.telemetry))
            {
                Ok(r) => {
                    if r.deduped {
                        state.telemetry.add(SvcCounter::IngestDeduped, 1);
                    } else {
                        state.telemetry.add(SvcCounter::CkptsIngested, 1);
                        state
                            .telemetry
                            .add(SvcCounter::IngestBytes, req.body.len() as u64);
                        state
                            .telemetry
                            .observe(SvcHist::IngestBodyBytes, req.body.len() as u64);
                    }
                    (
                        200,
                        format!(
                            "{{\"ok\":true,\"run\":\"{}\",\"marker\":{}}}\n",
                            query::json_escape(id),
                            r.marker
                        ),
                    )
                }
                Err(e) => ingest_error(state, &e),
            }
        }
        ("GET", ["runs", id, "summarize"]) => with_journal(state, id, query::summarize_json),
        ("GET", ["runs", id, "spans"]) => with_journal(state, id, query::spans_json),
        ("GET", ["runs", id, "metrics"]) => with_journal(state, id, query::metrics_json),
        ("GET", ["runs", id, "anomalies"]) => with_journal(state, id, query::anomalies_json),
        ("GET", ["runs", id, "timeline", rank]) => match rank.parse::<usize>() {
            Err(_) => (400, error_body(&format!("invalid rank {rank:?}"))),
            Ok(rank) => match state.store.journal(id, Some(&state.telemetry)) {
                Err(e) => store_error(&e),
                Ok(j) => match query::timeline_json(&j, rank) {
                    Ok(body) => (200, body),
                    Err(e) => (400, error_body(&e)),
                },
            },
        },
        ("GET", ["runs", a, "diff", b]) => {
            match (
                state.store.journal(a, Some(&state.telemetry)),
                state.store.journal(b, Some(&state.telemetry)),
            ) {
                (Ok(ja), Ok(jb)) => (200, query::diff_json(&ja, &jb)),
                (Err(e), _) | (_, Err(e)) => store_error(&e),
            }
        }
        ("POST", ["shutdown"]) => {
            state.stopping.store(true, Ordering::SeqCst);
            // Wake the acceptor parked in accept and every idle worker;
            // this worker breaks its own loop after the response flushes.
            wake_acceptor(local);
            state.queue_wake.notify_all();
            (200, "{\"ok\":true,\"stopping\":true}\n".to_string())
        }
        _ => (
            404,
            error_body(&format!(
                "no route for {} /{}",
                req.method,
                req.segments.join("/")
            )),
        ),
    }
}

/// Classify a failed ingest into the right telemetry counter.
fn ingest_error(state: &State, e: &StoreError) -> (u16, String) {
    match e.status {
        400 => state.telemetry.add(SvcCounter::IngestRejected, 1),
        503 => state.telemetry.add(SvcCounter::ReadOnlyRejects, 1),
        _ => {}
    }
    store_error(e)
}

fn with_journal(
    state: &State,
    id: &str,
    render: impl FnOnce(&obs::RunJournal) -> String,
) -> (u16, String) {
    match state.store.journal(id, Some(&state.telemetry)) {
        Ok(j) => (200, render(&j)),
        Err(e) => store_error(&e),
    }
}

/// The `/runs` listing: every session in run-ID order with its bounded
/// hot state — merged counter totals (journal snapshots + checkpoint
/// sketches), the checkpoint sketch's exact histogram digest, and the
/// per-marker peak digest from the journal's snapshots.
fn render_runs(sessions: &[(String, Session)]) -> String {
    let mut out = String::from("{\"service\":\"chamserve\",\"runs\":[");
    for (i, (id, s)) in sessions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"ranks\":{},\"armed\":{},\"events\":{},\"snapshots\":{}",
            query::json_escape(id),
            s.ranks,
            s.armed,
            s.events,
            s.snapshots
        ));
        match s.journal_digest {
            Some(d) => out.push_str(&format!(",\"journal_digest\":\"{d:#x}\"")),
            None => out.push_str(",\"journal_digest\":null"),
        }
        let markers: Vec<String> = s.ckpt_markers.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            ",\"ckpt_markers\":[{}],\"ckpt_ranks\":{}",
            markers.join(","),
            s.ckpt_ranks
        ));
        out.push_str(",\"sketch\":{\"ctrs\":{");
        for (k, c) in Counter::ALL.iter().enumerate() {
            let v = s.journal_ctrs[*c as usize].saturating_add(s.ckpt_sketch.get(*c));
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", c.label()));
        }
        out.push_str("},\"snapshot_hist_peaks\":{");
        for (k, h) in HistId::ALL.iter().enumerate() {
            let base = (*h as usize) * HIST_DIGEST_STRIDE;
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                h.label(),
                s.snapshot_hist_peaks[base],
                s.snapshot_hist_peaks[base + 1],
                s.snapshot_hist_peaks[base + 2],
                s.snapshot_hist_peaks[base + 3]
            ));
        }
        out.push_str("},\"ckpt_hists\":{");
        let ckpt_digest = s.ckpt_sketch.hist_digest();
        for (k, h) in HistId::ALL.iter().enumerate() {
            let base = (*h as usize) * HIST_DIGEST_STRIDE;
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                h.label(),
                ckpt_digest[base],
                ckpt_digest[base + 1],
                ckpt_digest[base + 2],
                ckpt_digest[base + 3]
            ));
        }
        out.push_str("}}}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_runs_is_deterministic_and_ordered() {
        let a = Session {
            ranks: 4,
            armed: false,
            events: 10,
            snapshots: 2,
            journal_digest: Some(0xabc),
            ..Session::default()
        };
        let b = Session::default();
        let sessions = vec![("alpha".to_string(), a), ("beta".to_string(), b)];
        let r = render_runs(&sessions);
        assert!(
            r.starts_with("{\"service\":\"chamserve\",\"runs\":["),
            "{r}"
        );
        let ia = r.find("\"id\":\"alpha\"").unwrap();
        let ib = r.find("\"id\":\"beta\"").unwrap();
        assert!(ia < ib, "run-ID order");
        assert!(r.contains("\"journal_digest\":\"0xabc\""), "{r}");
        assert!(r.contains("\"journal_digest\":null"), "{r}");
        assert!(r.ends_with("]}\n"), "{r}");
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(
            error_body("bad \"thing\""),
            "{\"error\":\"bad \\\"thing\\\"\"}\n"
        );
    }

    #[test]
    fn crc_verify_accepts_match_rejects_mismatch() {
        let mut req = Request {
            method: "POST".to_string(),
            segments: vec!["runs".to_string(), "x".to_string(), "journal".to_string()],
            body: b"123456789".to_vec(),
            crc: None,
        };
        assert!(verify_crc(&req).is_ok(), "no claim, no check");
        req.crc = Some(0xCBF4_3926);
        assert!(verify_crc(&req).is_ok(), "correct claim");
        req.crc = Some(0xDEAD_BEEF);
        let err = verify_crc(&req).unwrap_err();
        assert!(err.contains("deadbeef"), "{err}");
        assert!(err.contains("cbf43926"), "{err}");
    }
}
