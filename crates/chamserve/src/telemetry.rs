//! The service watches itself with the observability plane it serves.
//!
//! The daemon's own telemetry rides on the *same* `obs::metrics`
//! machinery it exposes to clients: saturating u64 counters in a typed
//! slot array (the [`SvcCounter`] enum mirrors `obs::metrics::Counter`'s
//! idiom) and `obs::metrics::Histogram` sketches for latencies and
//! payload sizes, digested with the same `(count, p50, p99, max)` shape
//! the journal's `snapshot` events use. `GET /metrics` renders the whole
//! set as one canonical JSON object — the loop closes: the query plane's
//! own request latency is queryable through the query plane.

use std::sync::Mutex;

use obs::metrics::Histogram;

use crate::store::QuarantineCounts;

/// Typed service counters, one slot each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SvcCounter {
    /// Requests accepted (every parsed request, any outcome).
    HttpRequests = 0,
    /// Responses in the 2xx class.
    Http2xx = 1,
    /// Responses in the 4xx class.
    Http4xx = 2,
    /// Responses in the 5xx class.
    Http5xx = 3,
    /// Journal uploads accepted into the store.
    JournalsIngested = 4,
    /// Checkpoint uploads accepted into the store.
    CkptsIngested = 5,
    /// Total body bytes accepted by ingestion endpoints.
    IngestBytes = 6,
    /// Ingestion bodies rejected by the strict parsers.
    IngestRejected = 7,
    /// Query endpoints answered from the decoded-journal cache.
    CacheHits = 8,
    /// Query endpoints that had to re-decode the spilled journal.
    CacheMisses = 9,
    /// Decoded journals evicted by the cache's LRU policy.
    CacheEvictions = 10,
    /// Query-endpoint responses served (the six query routes).
    QueriesServed = 11,
    /// Idle sessions whose hot state was demoted to a cold stub.
    SessionEvictions = 12,
    /// Cold sessions rehydrated on demand from their manifest-backed
    /// spill (at ingest, query, or listing time).
    SessionRehydrations = 13,
    /// Ingest bodies answered from the content-digest dedupe (a retried
    /// duplicate upload — cheap 200, no parse, no disk).
    IngestDeduped = 14,
    /// Uploads rejected with 422 because the body did not match its
    /// `Content-Crc32` claim (corrupted in transit; client retries).
    CrcRejected = 15,
    /// Connections shed with 429 because the accept backlog was full.
    LoadShed = 16,
    /// Requests timed out with 408 (header or body deadline expired).
    RequestTimeouts = 17,
    /// Ingests rejected with 503 while the store was read-only.
    ReadOnlyRejects = 18,
}

impl SvcCounter {
    /// Number of counter slots.
    pub const COUNT: usize = 19;

    /// All counters, in slot order.
    pub const ALL: [SvcCounter; SvcCounter::COUNT] = [
        SvcCounter::HttpRequests,
        SvcCounter::Http2xx,
        SvcCounter::Http4xx,
        SvcCounter::Http5xx,
        SvcCounter::JournalsIngested,
        SvcCounter::CkptsIngested,
        SvcCounter::IngestBytes,
        SvcCounter::IngestRejected,
        SvcCounter::CacheHits,
        SvcCounter::CacheMisses,
        SvcCounter::CacheEvictions,
        SvcCounter::QueriesServed,
        SvcCounter::SessionEvictions,
        SvcCounter::SessionRehydrations,
        SvcCounter::IngestDeduped,
        SvcCounter::CrcRejected,
        SvcCounter::LoadShed,
        SvcCounter::RequestTimeouts,
        SvcCounter::ReadOnlyRejects,
    ];

    /// Stable label, used as the JSON key in `GET /metrics`.
    pub fn label(self) -> &'static str {
        match self {
            SvcCounter::HttpRequests => "http_requests",
            SvcCounter::Http2xx => "http_2xx",
            SvcCounter::Http4xx => "http_4xx",
            SvcCounter::Http5xx => "http_5xx",
            SvcCounter::JournalsIngested => "journals_ingested",
            SvcCounter::CkptsIngested => "ckpts_ingested",
            SvcCounter::IngestBytes => "ingest_bytes",
            SvcCounter::IngestRejected => "ingest_rejected",
            SvcCounter::CacheHits => "cache_hits",
            SvcCounter::CacheMisses => "cache_misses",
            SvcCounter::CacheEvictions => "cache_evictions",
            SvcCounter::QueriesServed => "queries_served",
            SvcCounter::SessionEvictions => "sessions_evicted",
            SvcCounter::SessionRehydrations => "sessions_rehydrated",
            SvcCounter::IngestDeduped => "ingest_deduped",
            SvcCounter::CrcRejected => "crc_rejected",
            SvcCounter::LoadShed => "load_shed_429",
            SvcCounter::RequestTimeouts => "request_timeouts_408",
            SvcCounter::ReadOnlyRejects => "read_only_rejects_503",
        }
    }
}

/// The service histogram family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SvcHist {
    /// Wall-clock request latency, nanoseconds (accept to response flush).
    RequestLatencyNs = 0,
    /// Ingested body sizes, bytes.
    IngestBodyBytes = 1,
    /// Query response sizes, bytes.
    ResponseBytes = 2,
}

impl SvcHist {
    /// Number of histogram slots.
    pub const COUNT: usize = 3;

    /// All histograms, in slot order.
    pub const ALL: [SvcHist; SvcHist::COUNT] = [
        SvcHist::RequestLatencyNs,
        SvcHist::IngestBodyBytes,
        SvcHist::ResponseBytes,
    ];

    /// Stable label, used as the JSON key in `GET /metrics`.
    pub fn label(self) -> &'static str {
        match self {
            SvcHist::RequestLatencyNs => "request_latency_ns",
            SvcHist::IngestBodyBytes => "ingest_body_bytes",
            SvcHist::ResponseBytes => "response_bytes",
        }
    }
}

/// Shared, thread-safe telemetry state for one server instance.
#[derive(Debug, Default)]
pub struct Telemetry {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    counters: [u64; SvcCounter::COUNT],
    hists: [Histogram; SvcHist::COUNT],
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            counters: [0; SvcCounter::COUNT],
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

impl Telemetry {
    /// Fresh all-zero telemetry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Bump a counter by `n` (saturating).
    pub fn add(&self, c: SvcCounter, n: u64) {
        let mut g = self.inner.lock().expect("telemetry lock");
        let slot = &mut g.counters[c as usize];
        *slot = slot.saturating_add(n);
    }

    /// Record one value into a histogram sketch.
    pub fn observe(&self, h: SvcHist, v: u64) {
        self.inner.lock().expect("telemetry lock").hists[h as usize].record(v);
    }

    /// One counter's current value.
    pub fn get(&self, c: SvcCounter) -> u64 {
        self.inner.lock().expect("telemetry lock").counters[c as usize]
    }

    /// Render the whole set as one canonical JSON object (trailing
    /// newline included). `sessions_live`, `cached_journals`,
    /// `quarantined`, and `read_only` are gauges sampled by the caller
    /// from the store.
    pub fn render(
        &self,
        sessions_live: usize,
        cached_journals: usize,
        quarantined: &QuarantineCounts,
        read_only: bool,
    ) -> String {
        let g = self.inner.lock().expect("telemetry lock");
        let mut out = String::from("{\"service\":\"chamserve\"");
        out.push_str(&format!(",\"sessions_live\":{sessions_live}"));
        out.push_str(&format!(",\"cached_journals\":{cached_journals}"));
        out.push_str(&format!(",\"read_only\":{read_only}"));
        out.push_str(&format!(
            ",\"quarantined\":{{\"torn\":{},\"corrupt\":{},\"orphaned\":{},\"bad_manifest\":{},\"total\":{}}}",
            quarantined.torn,
            quarantined.corrupt,
            quarantined.orphaned,
            quarantined.bad_manifest,
            quarantined.total()
        ));
        out.push_str(",\"counters\":{");
        for (i, c) in SvcCounter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.label(), g.counters[*c as usize]));
        }
        out.push_str("},\"hists\":{");
        for (i, h) in SvcHist::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let hist = &g.hists[*h as usize];
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                h.label(),
                hist.count(),
                hist.quantile(0.5),
                hist.quantile(0.99),
                hist.max()
            ));
        }
        out.push_str("}}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_slots_match() {
        let mut labels: Vec<&str> = SvcCounter::ALL.iter().map(|c| c.label()).collect();
        labels.extend(SvcHist::ALL.iter().map(|h| h.label()));
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n);
        for (i, c) in SvcCounter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, h) in SvcHist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
    }

    #[test]
    fn render_reports_counts_and_digests() {
        let t = Telemetry::new();
        t.add(SvcCounter::HttpRequests, 3);
        t.observe(SvcHist::RequestLatencyNs, 1000);
        t.observe(SvcHist::RequestLatencyNs, 2000);
        let q = QuarantineCounts {
            torn: 2,
            ..QuarantineCounts::default()
        };
        let r = t.render(2, 1, &q, true);
        assert!(r.starts_with("{\"service\":\"chamserve\""), "{r}");
        assert!(r.contains("\"sessions_live\":2"), "{r}");
        assert!(r.contains("\"read_only\":true"), "{r}");
        assert!(
            r.contains(
                "\"quarantined\":{\"torn\":2,\"corrupt\":0,\"orphaned\":0,\"bad_manifest\":0,\"total\":2}"
            ),
            "{r}"
        );
        assert!(r.contains("\"http_requests\":3"), "{r}");
        assert!(r.contains("\"request_latency_ns\":{\"count\":2"), "{r}");
        assert!(r.ends_with("}\n"), "{r}");
        assert_eq!(t.get(SvcCounter::HttpRequests), 3);
    }
}
