//! Seeded fault injection for the service plane itself.
//!
//! The repo's methodology (see FAULTS.md) is to *inject* failures
//! deterministically and validate recovery against ground truth, and the
//! daemon is now subject to the same discipline as the simulated wire: a
//! [`SvcFaultPlan`] makes the store's spill writes tear at a seeded byte,
//! makes connections drop mid-exchange, delays responses, injects ENOSPC
//! to drive the read-only degraded mode, and can stall an ingest between
//! artifact write and manifest commit — the exact window a `kill -9`
//! exploits — so the crash-recovery harness can park the daemon there and
//! shoot it.
//!
//! Every coin is a pure function of `(plan seed, event nonce)` through
//! the same SplitMix64 mixer `mpisim::FaultPlan` uses, so a failing
//! sequence replays exactly from its seed. Store-side nonces count spill
//! writes; route-side nonces count accepted connections.

use crate::util::splitmix64;

/// A deterministic fault schedule for one daemon instance. All rates are
/// per-mille per event; `None`/zero fields inject nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SvcFaultPlan {
    /// Seed for all fault coins.
    pub seed: u64,
    /// Per-mille chance a spill write tears: a seeded prefix of the bytes
    /// reaches the `.tmp` file, then the write errors — what a crash
    /// mid-`write(2)` leaves behind.
    pub torn_per_mille: u16,
    /// Per-mille chance an accepted connection is dropped while the
    /// request body is still being read (client sees a reset mid-send).
    pub drop_pre_per_mille: u16,
    /// Per-mille chance the connection is dropped *after* the request was
    /// fully processed but before the response is written — the case that
    /// makes non-idempotent retries dangerous.
    pub drop_post_per_mille: u16,
    /// Fixed delay injected before every response, in milliseconds.
    pub delay_ms: u64,
    /// After this many total spill bytes, every further spill write fails
    /// with an injected ENOSPC (flipping the store read-only).
    pub enospc_after_bytes: Option<u64>,
    /// Stall the Nth accepted ingest (0-based, journals and checkpoints
    /// both count) for `stall_ms` between its artifact write and its
    /// manifest commit — the `kill -9` window.
    pub stall_ingest: Option<u64>,
    /// How long a stalled ingest parks, in milliseconds.
    pub stall_ms: u64,
}

impl SvcFaultPlan {
    /// A plan that injects nothing (but still arms the armed code paths).
    pub fn new(seed: u64) -> Self {
        SvcFaultPlan {
            seed,
            stall_ms: 600_000,
            ..SvcFaultPlan::default()
        }
    }

    /// Parse a `key=value,key=value` spec (the `chamtrace serve --faults`
    /// grammar). Keys: `seed`, `torn`, `drop_pre`, `drop_post`,
    /// `delay_ms`, `enospc_after`, `stall_ingest`, `stall_ms`.
    pub fn parse(spec: &str) -> Result<SvcFaultPlan, String> {
        let mut plan = SvcFaultPlan::new(0);
        for field in spec.split(',').filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault field {field:?} is not key=value"))?;
            let num = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid {what} {value:?}"))
            };
            let mille = |what: &str| -> Result<u16, String> {
                let v = num(what)?;
                if v > 1000 {
                    return Err(format!("{what} {v} exceeds 1000 per-mille"));
                }
                Ok(v as u16)
            };
            match key {
                "seed" => plan.seed = num("seed")?,
                "torn" => plan.torn_per_mille = mille("torn rate")?,
                "drop_pre" => plan.drop_pre_per_mille = mille("drop_pre rate")?,
                "drop_post" => plan.drop_post_per_mille = mille("drop_post rate")?,
                "delay_ms" => plan.delay_ms = num("delay_ms")?,
                "enospc_after" => plan.enospc_after_bytes = Some(num("enospc_after")?),
                "stall_ingest" => plan.stall_ingest = Some(num("stall_ingest")?),
                "stall_ms" => plan.stall_ms = num("stall_ms")?,
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Whether any injection is actually armed.
    pub fn injects(&self) -> bool {
        self.torn_per_mille > 0
            || self.drop_pre_per_mille > 0
            || self.drop_post_per_mille > 0
            || self.delay_ms > 0
            || self.enospc_after_bytes.is_some()
            || self.stall_ingest.is_some()
    }

    /// The fate of the `nonce`-th spill write: `Some(tear_at)` when the
    /// write tears after `tear_at` bytes (always < the write length for a
    /// non-empty buffer), `None` when it completes. Distinct SplitMix64
    /// windows feed the coin and the tear position so they stay
    /// independent, mirroring `mpisim::FaultPlan::fate`.
    pub fn torn_write(&self, nonce: u64, len: usize) -> Option<usize> {
        if self.torn_per_mille == 0 || len == 0 {
            return None;
        }
        let h = splitmix64(self.seed ^ splitmix64(0x7031 ^ nonce));
        if (h % 1000) as u16 >= self.torn_per_mille {
            return None;
        }
        Some(((h >> 16) % len as u64) as usize)
    }

    /// Whether the `nonce`-th accepted connection drops before the body
    /// is fully read.
    pub fn drop_pre(&self, nonce: u64) -> bool {
        self.coin(0xD409, nonce, self.drop_pre_per_mille)
    }

    /// Whether the `nonce`-th accepted connection drops after processing
    /// but before the response.
    pub fn drop_post(&self, nonce: u64) -> bool {
        self.coin(0xD70B, nonce, self.drop_post_per_mille)
    }

    fn coin(&self, window: u64, nonce: u64, per_mille: u16) -> bool {
        if per_mille == 0 {
            return false;
        }
        let h = splitmix64(self.seed ^ splitmix64(window ^ nonce));
        ((h % 1000) as u16) < per_mille
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip_and_errors() {
        let plan = SvcFaultPlan::parse(
            "seed=42,torn=200,drop_pre=100,drop_post=50,delay_ms=5,\
             enospc_after=65536,stall_ingest=1,stall_ms=1000",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.torn_per_mille, 200);
        assert_eq!(plan.drop_pre_per_mille, 100);
        assert_eq!(plan.drop_post_per_mille, 50);
        assert_eq!(plan.delay_ms, 5);
        assert_eq!(plan.enospc_after_bytes, Some(65536));
        assert_eq!(plan.stall_ingest, Some(1));
        assert_eq!(plan.stall_ms, 1000);
        assert!(plan.injects());

        assert!(SvcFaultPlan::parse("torn").is_err(), "missing =");
        assert!(SvcFaultPlan::parse("torn=1001").is_err(), "rate > 1000");
        assert!(SvcFaultPlan::parse("bogus=1").is_err(), "unknown key");
        assert!(!SvcFaultPlan::parse("seed=7").unwrap().injects());
    }

    #[test]
    fn coins_are_deterministic_and_rate_shaped() {
        let plan = SvcFaultPlan {
            torn_per_mille: 300,
            drop_pre_per_mille: 300,
            ..SvcFaultPlan::new(0xBEEF)
        };
        let torn: Vec<Option<usize>> = (0..1000).map(|n| plan.torn_write(n, 1024)).collect();
        let again: Vec<Option<usize>> = (0..1000).map(|n| plan.torn_write(n, 1024)).collect();
        assert_eq!(torn, again, "same seed, same fates");
        let fired = torn.iter().flatten().count();
        assert!(
            (150..450).contains(&fired),
            "~30% of writes tear, got {fired}/1000"
        );
        for at in torn.iter().flatten() {
            assert!(*at < 1024, "tear position inside the buffer");
        }
        let drops = (0..1000).filter(|n| plan.drop_pre(*n)).count();
        assert!((150..450).contains(&drops), "{drops}/1000");
        // Different windows: the two coin streams are not the same.
        let both = (0..1000)
            .filter(|n| plan.drop_pre(*n) && plan.torn_write(*n, 64).is_some())
            .count();
        assert!(both < 200, "coins are independent, {both} coincide");
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let plan = SvcFaultPlan::new(99);
        assert!(!plan.injects());
        assert!((0..100).all(|n| plan.torn_write(n, 100).is_none()));
        assert!((0..100).all(|n| !plan.drop_pre(n) && !plan.drop_post(n)));
    }
}
