//! Idempotent retrying push: the client half of crash-safety.
//!
//! A workflow outlives its trace service and vice versa — `matrix run
//! --push` and `chaos supervise --push` must survive a flapping daemon,
//! and the daemon must survive clients that vanish mid-upload. The
//! client's side of that contract:
//!
//! - every upload carries a `Content-Crc32` header the server verifies
//!   *before* touching session state, so a body corrupted in transit can
//!   never poison a session;
//! - transport failures (connect refused, reset mid-send, lost response)
//!   and retryable statuses (408/422/429/500/503) are retried under a
//!   seeded-jitter exponential backoff [`RetryPolicy`] — the same shape
//!   as the mpisim reliable protocol's retransmit backoff, on wall time;
//! - retrying is *safe* because the server dedupes by content digest: a
//!   duplicate of an already-accepted body is a cheap 200 with the
//!   original receipt, so "response lost after commit" converges instead
//!   of double-ingesting.
//!
//! Semantic rejections (a 400 with a parser diagnostic) are never
//! retried — resending a malformed journal cannot fix it.

use std::time::Duration;

use crate::http;
use crate::util::{crc32, splitmix64};

/// Seeded-jitter exponential backoff for push retries. Mirrors
/// `mpisim::Proc::retransmit_backoff`: delay `base * 2^min(attempt-1,
/// cap)` scaled by a jitter factor in `[0.5, 1.5)` hashed from the seed
/// and the attempt coordinates — but on *wall* time, since the client is
/// a real process talking to a real socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (>= 1); `attempts = 1` disables retrying.
    pub attempts: u32,
    /// Base delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0xC4A3_5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt).
    pub fn once() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry number `attempt` (1-based: the sleep
    /// after the `attempt`-th failure). `coord` folds the transfer
    /// identity (e.g. a hash of the run ID) into the jitter so concurrent
    /// pushers under one seed do not thundering-herd in lock step.
    pub fn backoff(&self, attempt: u32, coord: u64) -> Duration {
        const EXP_CAP: u32 = 10;
        let exp = attempt.saturating_sub(1).min(EXP_CAP);
        let mut h = self.seed;
        for v in [coord, attempt as u64] {
            h = splitmix64(h ^ v);
        }
        // Top 53 bits → uniform in [0, 1); shifted to [0.5, 1.5).
        let jitter = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64;
        let delay = self.base.as_secs_f64() * f64::from(1u32 << exp) * jitter;
        Duration::from_secs_f64(delay).min(self.cap)
    }
}

/// Why a push ultimately failed, after the policy's budget ran out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The server answered with a non-retryable status (a semantic
    /// rejection — malformed body, bad run ID). Never retried.
    Rejected {
        /// The HTTP status.
        status: u16,
        /// The server's JSON error body, trimmed.
        detail: String,
    },
    /// Every attempt failed at the transport layer or with a retryable
    /// status; the last failure is carried verbatim.
    Transport {
        /// Attempts made (== the policy's budget).
        attempts: u32,
        /// The last attempt's failure.
        last: String,
    },
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Rejected { status, detail } => {
                write!(f, "rejected: HTTP {status}: {detail}")
            }
            PushError::Transport { attempts, last } => {
                write!(f, "transport failed after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for PushError {}

/// Whether a status is worth retrying: request timeouts, transit
/// corruption (the server's `Content-Crc32` verdict), shed load, server
/// errors, and read-only degradation all clear up on their own; any other
/// non-200 is a semantic rejection.
fn retryable(status: u16) -> bool {
    matches!(status, 408 | 422 | 429 | 500 | 503)
}

/// POST `body` at `addr`'s `path` with a `Content-Crc32` header, retrying
/// under `policy`. Returns the server's receipt body on 200.
pub fn post_with_retry(
    addr: &str,
    path: &str,
    body: &[u8],
    policy: &RetryPolicy,
    timeout: Duration,
) -> Result<String, PushError> {
    let crc = crc32(body);
    let coord = splitmix64(crc32(path.as_bytes()) as u64);
    let attempts = policy.attempts.max(1);
    let mut last = String::new();
    for attempt in 1..=attempts {
        let outcome = http::request_with(
            addr,
            "POST",
            path,
            body,
            &[("content-crc32", format!("{crc:08x}"))],
            timeout,
        );
        match outcome {
            Ok((200, resp)) => return Ok(String::from_utf8_lossy(&resp).into_owned()),
            Ok((status, resp)) if retryable(status) => {
                let text = String::from_utf8_lossy(&resp);
                last = format!("HTTP {status}: {}", text.trim_end());
            }
            Ok((status, resp)) => {
                let text = String::from_utf8_lossy(&resp);
                return Err(PushError::Rejected {
                    status,
                    detail: text.trim_end().to_string(),
                });
            }
            Err(e) => last = e,
        }
        if attempt < attempts {
            std::thread::sleep(policy.backoff(attempt, coord));
        }
    }
    Err(PushError::Transport { attempts, last })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let p = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(60),
            seed: 7,
        };
        for attempt in 1..=6u32 {
            let d = p.backoff(attempt, 0xABCD).as_secs_f64();
            let nominal = 0.010 * f64::from(1u32 << (attempt - 1));
            assert!(
                d >= nominal * 0.5 && d < nominal * 1.5,
                "attempt {attempt}: {d}s outside [{}, {})",
                nominal * 0.5,
                nominal * 1.5
            );
        }
        // Deterministic per (seed, coord, attempt); distinct per coord.
        assert_eq!(p.backoff(3, 1), p.backoff(3, 1));
        assert_ne!(p.backoff(3, 1), p.backoff(3, 2));
    }

    #[test]
    fn backoff_respects_the_cap() {
        let p = RetryPolicy {
            attempts: 32,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(250),
            seed: 1,
        };
        for attempt in [4, 8, 16, 31] {
            assert!(p.backoff(attempt, 0) <= Duration::from_millis(250));
        }
    }

    #[test]
    fn retryable_statuses_are_the_degraded_set() {
        for s in [408, 422, 429, 500, 503] {
            assert!(retryable(s), "{s}");
        }
        for s in [400, 404, 405, 411, 413, 431] {
            assert!(!retryable(s), "{s}");
        }
    }

    #[test]
    fn transport_error_names_attempts_and_cause() {
        // Nothing listens on a reserved port 1 — every attempt fails at
        // connect; the error carries the budget and the last cause.
        let policy = RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 3,
        };
        let err = post_with_retry(
            "127.0.0.1:1",
            "/runs/x/journal",
            b"{}",
            &policy,
            Duration::from_millis(500),
        )
        .unwrap_err();
        match &err {
            PushError::Transport { attempts, last } => {
                assert_eq!(*attempts, 2);
                assert!(last.contains("connect"), "{last}");
            }
            other => panic!("expected transport error, got {other}"),
        }
        assert!(err.to_string().contains("after 2 attempt(s)"));
    }
}
