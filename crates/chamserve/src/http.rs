//! A minimal HTTP/1.1 layer on `std::net` — just enough protocol for the
//! trace service, hand-rolled under the workspace's hermetic policy (no
//! registry dependencies, so no hyper/axum).
//!
//! Scope is deliberately narrow and explicit:
//!
//! - request line + headers are bounded by [`MAX_HEAD_BYTES`]; bodies are
//!   read only when `Content-Length` is present and within the server's
//!   configured cap (chunked transfer encoding is rejected with 411);
//! - every response carries `Content-Length` and `Connection: close`, and
//!   the connection is closed after one exchange — keep-alive buys
//!   nothing for a push-then-query workload and costs idle sockets;
//! - responses are byte-deterministic: the status line, the fixed header
//!   set, and the body are all canonical, so endpoint goldens can be
//!   `diff`ed exactly like journal goldens.
//!
//! The same module carries the tiny client used by `chamtrace push` and
//! the test suites, so both ends of the wire share one header grammar.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request: method, split path, and the raw body.
#[derive(Debug)]
pub struct Request {
    /// `GET` or `POST` (anything else is rejected at parse time).
    pub method: String,
    /// Request target with the leading `/` stripped and split on `/`;
    /// `GET /` parses to an empty vector.
    pub segments: Vec<String>,
    /// Raw body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// The client's `Content-Crc32` claim (8 hex digits), if sent. The
    /// router verifies it against the body *before* any session state is
    /// touched; a mismatch is a 422 the retrying client resends on.
    pub crc: Option<u32>,
}

/// Why a request could not be served at the protocol level, carrying the
/// HTTP status that describes it.
#[derive(Debug)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable detail (lands in the JSON error body).
    pub detail: String,
}

impl HttpError {
    fn new(status: u16, detail: impl Into<String>) -> Self {
        HttpError {
            status,
            detail: detail.into(),
        }
    }
}

/// Map a read failure to its protocol status: a socket deadline expiring
/// is a 408 (the slow-loris shed), anything else a 400.
fn read_error(what: &str, e: &std::io::Error) -> HttpError {
    use std::io::ErrorKind;
    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
        HttpError::new(408, format!("{what} deadline expired"))
    } else {
        HttpError::new(400, format!("{what}: {e}"))
    }
}

/// Read and parse one request from the stream. `max_body` bounds the
/// `Content-Length` the server will buffer — an oversized claim is
/// rejected with 413 *before* any body byte is read or buffered.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    read_request_with(stream, max_body, None)
}

/// [`read_request`] with a distinct per-read deadline for the body
/// phase: the stream's current read timeout governs the head, and
/// `body_timeout` (when set) is installed on the socket once the head
/// has parsed, so slow header writers and slow body writers each hit
/// their own 408.
pub fn read_request_with(
    stream: &mut TcpStream,
    max_body: usize,
    body_timeout: Option<Duration>,
) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| HttpError::new(500, format!("stream clone: {e}")))?,
    );
    let mut head = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| read_error("head read", &e))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-head"));
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head too large"));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing request target"))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            400,
            format!("unsupported version {version:?}"),
        ));
    }
    if method != "GET" && method != "POST" {
        return Err(HttpError::new(405, format!("method {method} not allowed")));
    }

    let mut content_length: Option<usize> = None;
    let mut crc: Option<u32> = None;
    for h in lines {
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header {h:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| HttpError::new(400, format!("bad content-length {value:?}")))?;
                content_length = Some(n);
            }
            "content-crc32" => {
                let v = u32::from_str_radix(value, 16)
                    .map_err(|_| HttpError::new(400, format!("bad content-crc32 {value:?}")))?;
                crc = Some(v);
            }
            "transfer-encoding" => {
                return Err(HttpError::new(411, "chunked bodies not supported"));
            }
            _ => {}
        }
    }

    // The cap gates the *claimed* length before a single body byte is
    // buffered — an absurd Content-Length costs a 413, not an allocation.
    let body = match content_length {
        None | Some(0) => Vec::new(),
        Some(n) if n > max_body => {
            return Err(HttpError::new(
                413,
                format!("body of {n} bytes exceeds the {max_body}-byte cap"),
            ));
        }
        Some(n) => {
            if let Some(t) = body_timeout {
                // The BufReader wraps a clone of the same socket, so the
                // new deadline applies to the reads below.
                stream.set_read_timeout(Some(t)).ok();
            }
            let mut buf = vec![0u8; n];
            reader
                .read_exact(&mut buf)
                .map_err(|e| read_error("body read", &e))?;
            buf
        }
    };

    // Split the target: "/runs/bt4/metrics" -> ["runs", "bt4", "metrics"].
    let path = target.split('?').next().unwrap_or(target);
    let segments: Vec<String> = path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(percent_decode)
        .collect();
    Ok(Request {
        method,
        segments,
        body,
        crc,
    })
}

/// Decode `%XX` escapes (run IDs travel in the path). Invalid escapes
/// pass through verbatim — the run-ID validator rejects them later.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let (Some(h), Some(l)) = (
                bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
            ) {
                out.push((h * 16 + l) as u8);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Canonical reason phrases for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one canonical response and flush. The header set is fixed so
/// response bytes are reproducible end to end.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with(stream, status, content_type, &[], body)
}

/// [`write_response`] with extra canonical headers (e.g. the
/// `retry-after` a 503/429 carries). Header names must be lowercase.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// One client exchange: connect, send, read the full response. Returns
/// `(status, body)`. Used by `chamtrace push`, the matrix `--push` hook,
/// and the integration suites.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<(u16, Vec<u8>), String> {
    request_with(addr, method, path, body, &[], timeout)
}

/// [`request`] with extra request headers (the retrying push adds its
/// `content-crc32` claim here). Header names must be lowercase.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    extra: &[(&str, String)],
    timeout: Duration,
) -> Result<(u16, Vec<u8>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("connection: close\r\n\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send {path}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_and_garbage() {
        assert_eq!(percent_decode("bt4"), "bt4");
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("50%"), "50%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn reasons_cover_emitted_statuses() {
        for s in [200, 400, 404, 405, 408, 411, 413, 422, 429, 431, 500, 503] {
            assert_ne!(reason(s), "Unknown", "status {s}");
        }
    }

    /// Run `read_request` against one raw client payload and return the
    /// outcome plus how long the parse itself took. The client never
    /// sends a body, so any attempt to buffer one would block until the
    /// read deadline instead of failing fast.
    fn parse_raw(head: &str, max_body: usize) -> (Result<Request, HttpError>, Duration) {
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let head = head.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(head.as_bytes()).unwrap();
            // Hold the socket open: a server that tries to read the
            // (absent) body parks here instead of answering.
            std::thread::sleep(Duration::from_millis(500));
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let started = std::time::Instant::now();
        let out = read_request(&mut stream, max_body);
        let took = started.elapsed();
        client.join().unwrap();
        (out, took)
    }

    #[test]
    fn oversized_content_length_is_413_before_buffering() {
        // An absurd claimed length (here 1 TiB) must be rejected from the
        // header alone — no allocation, no body read. The client sends no
        // body at all, so reaching the reject proves nothing was buffered;
        // the sub-deadline wall-clock bound proves nothing was awaited.
        let (out, took) = parse_raw(
            "POST /runs/x/journal HTTP/1.1\r\ncontent-length: 1099511627776\r\n\r\n",
            1024,
        );
        let err = out.unwrap_err();
        assert_eq!(err.status, 413, "{}", err.detail);
        assert!(err.detail.contains("1099511627776"), "{}", err.detail);
        assert!(err.detail.contains("1024-byte cap"), "{}", err.detail);
        assert!(
            took < Duration::from_millis(400),
            "413 must not wait for body bytes (took {took:?})"
        );
        // At the cap is still accepted (when the bytes actually arrive).
        let (ok, _) = parse_raw("POST /x HTTP/1.1\r\ncontent-length: 0\r\n\r\n", 1024);
        assert!(ok.unwrap().body.is_empty());
    }

    #[test]
    fn content_crc32_header_parses_hex_and_rejects_garbage() {
        let req = parse_raw(
            "POST /x HTTP/1.1\r\ncontent-crc32: cbf43926\r\ncontent-length: 0\r\n\r\n",
            1024,
        )
        .0
        .unwrap();
        assert_eq!(req.crc, Some(0xCBF4_3926));
        let none = parse_raw("GET /x HTTP/1.1\r\n\r\n", 1024).0.unwrap();
        assert_eq!(none.crc, None);
        let err = parse_raw(
            "POST /x HTTP/1.1\r\ncontent-crc32: not-hex\r\ncontent-length: 0\r\n\r\n",
            1024,
        )
        .0
        .unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn slow_loris_head_is_408() {
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // A partial request line, then silence past the deadline.
            s.write_all(b"POST /runs").unwrap();
            std::thread::sleep(Duration::from_millis(600));
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let err = read_request(&mut stream, 1024).unwrap_err();
        assert_eq!(err.status, 408, "{}", err.detail);
        assert!(err.detail.contains("deadline"), "{}", err.detail);
        client.join().unwrap();
    }
}
