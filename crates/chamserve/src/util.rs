//! Small shared primitives for the durability layer: CRC-32, SplitMix64,
//! and crash-atomic file writes.
//!
//! Hand-rolled for the same reason `mpisim` inlines its frame CRC and
//! fault coins: the workspace is hermetic, so every crate carries the few
//! primitives it needs instead of a registry dependency.

use std::io::Write;
use std::path::Path;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven —
/// the same polynomial the reliable wire protocol and CKPT1 blobs use, so
/// one `crc32` value means the same thing at every layer of the system.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 of `bytes` (full init/finalize — matches every common
/// `crc32(...)` implementation, e.g. `python3 -c 'import zlib, ...'`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// SplitMix64 mixing step — the fault-coin hash `mpisim::FaultPlan` uses,
/// inlined so the service fault plan flips coins the exact same way.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `.tmp` suffix every in-flight spill write carries. Rehydration
/// treats any leftover `*.tmp` file as a torn write and quarantines it.
pub const TMP_SUFFIX: &str = ".tmp";

/// An [`atomic_write`] interceptor for the raw byte write.
pub type WriteHook<'a> = dyn Fn(&mut std::fs::File, &[u8]) -> std::io::Result<()> + 'a;

/// Crash-atomic durable write: write to `<path>.tmp`, fsync the file,
/// rename over `path`, then fsync the parent directory so the rename
/// itself is durable. After this returns, either the old content or the
/// complete new content survives a crash — never a torn prefix at `path`.
///
/// `write_hook` intercepts the raw byte write (the service fault plan
/// injects torn writes and ENOSPC there); `None` writes the whole buffer.
pub fn atomic_write(
    path: &Path,
    bytes: &[u8],
    write_hook: Option<&WriteHook<'_>>,
) -> std::io::Result<()> {
    let tmp = tmp_path(path);
    let mut f = std::fs::File::create(&tmp)?;
    match write_hook {
        Some(hook) => hook(&mut f, bytes)?,
        None => f.write_all(bytes)?,
    }
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // Directory fsync makes the rename durable; a filesystem that
        // cannot open a directory for sync (some CI overlays) still got
        // the rename's atomicity, so a failure here is not fatal.
        if let Ok(d) = std::fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The temp-file sibling `atomic_write` stages into.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(TMP_SUFFIX);
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_values() {
        // "123456789" is the canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn splitmix_matches_mpisim_constants() {
        // Pin the mixer so the service plane's coins stay aligned with
        // mpisim::fault's (same constants, same output).
        assert_ne!(splitmix64(0), 0);
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn atomic_write_replaces_and_cleans_tmp() {
        let dir = std::env::temp_dir().join(format!("chamserve_util_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"first", None).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second version", None).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second version");
        assert!(!tmp_path(&path).exists(), "tmp staged file is gone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_hook_leaves_tmp_behind() {
        let dir = std::env::temp_dir().join(format!("chamserve_torn_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        let tear = |f: &mut std::fs::File, b: &[u8]| -> std::io::Result<()> {
            f.write_all(&b[..b.len() / 2])?;
            Err(std::io::Error::other("injected tear"))
        };
        let err = atomic_write(&path, b"will be torn", Some(&tear)).unwrap_err();
        assert!(err.to_string().contains("injected tear"));
        assert!(!path.exists(), "final path never materializes");
        assert!(tmp_path(&path).exists(), "torn prefix stays in the tmp");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
